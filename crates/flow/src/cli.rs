//! A tiny shared command-line parser for the workspace binaries.
//!
//! Every bin (`plc`, `table3`, `sweep`, `ee_stats`, `bench_report`)
//! declares its options once as a [`CliSpec`]; parsing then enforces the
//! same contract everywhere: unknown flags fail with a usage message
//! instead of being silently ignored, missing or malformed values name
//! the offending flag, and `--help`/`-h` prints a generated usage text.
//!
//! The parser is deliberately minimal — long flags only, space-separated
//! values (`--vectors 50`), positional arguments gated by the spec — so
//! it stays a page of code instead of a dependency.

use std::fmt::Write as _;

/// One declared option.
#[derive(Debug, Clone, Copy)]
pub struct OptSpec {
    /// The flag, including dashes (`"--vectors"`).
    pub long: &'static str,
    /// Value placeholder when the flag takes one (`Some("N")`), `None`
    /// for boolean flags.
    pub value: Option<&'static str>,
    /// One-line help text.
    pub help: &'static str,
}

/// Positional-argument policy.
#[derive(Debug, Clone, Copy)]
pub struct PositionalSpec {
    /// Placeholder name in the usage line (`"<file.blif|bXX>"`).
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// Whether more than one positional is accepted.
    pub many: bool,
    /// Whether at least one positional is required.
    pub required: bool,
}

/// A binary's full command-line contract.
#[derive(Debug, Clone, Copy)]
pub struct CliSpec {
    /// Binary name as invoked.
    pub bin: &'static str,
    /// One-line description printed at the top of `--help`.
    pub about: &'static str,
    /// Positional policy (`None` = positionals are rejected).
    pub positional: Option<PositionalSpec>,
    /// The declared options.
    pub options: &'static [OptSpec],
}

/// A parse failure (or an explicit help request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was given; the payload is the full help text.
    Help(String),
    /// A usage error; the payload names the problem.
    Usage(String),
}

/// Successfully parsed arguments.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    usage: String,
    values: Vec<(&'static str, String)>,
    flags: Vec<&'static str>,
    /// Positional arguments in order.
    pub positionals: Vec<String>,
}

impl CliSpec {
    /// The generated usage/help text.
    #[must_use]
    pub fn help(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{} — {}", self.bin, self.about);
        let _ = write!(s, "\nusage: {}", self.bin);
        if let Some(p) = &self.positional {
            let _ = write!(
                s,
                " {}{}",
                if p.required {
                    p.name.to_string()
                } else {
                    format!("[{}]", p.name)
                },
                if p.many { " ..." } else { "" }
            );
        }
        if !self.options.is_empty() {
            let _ = write!(s, " [options]");
        }
        let _ = writeln!(s);
        if let Some(p) = &self.positional {
            let _ = writeln!(s, "\n  {:<24} {}", p.name, p.help);
        }
        if !self.options.is_empty() {
            let _ = writeln!(s, "\noptions:");
            for o in self.options {
                let flag = match o.value {
                    Some(v) => format!("{} <{v}>", o.long),
                    None => o.long.to_string(),
                };
                let _ = writeln!(s, "  {flag:<24} {}", o.help);
            }
        }
        let _ = writeln!(s, "  {:<24} print this help", "--help");
        s
    }

    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// [`CliError::Help`] on `--help`/`-h`; [`CliError::Usage`] on an
    /// unknown flag, a missing value, or a positional-policy violation.
    pub fn parse(&self, args: &[String]) -> Result<ParsedArgs, CliError> {
        let mut parsed = ParsedArgs {
            usage: self.help(),
            values: Vec::new(),
            flags: Vec::new(),
            positionals: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if arg == "--help" || arg == "-h" {
                return Err(CliError::Help(self.help()));
            }
            if arg.starts_with('-') && arg.len() > 1 {
                let Some(spec) = self.options.iter().find(|o| o.long == arg) else {
                    return Err(CliError::Usage(format!("unknown flag {arg}")));
                };
                if let Some(placeholder) = spec.value {
                    // A following declared flag (or --help) is a forgotten
                    // value, not a value — consuming it would silently
                    // disable that option. Undeclared tokens still pass
                    // through, so negative numbers work as values.
                    let next = args.get(i + 1);
                    let looks_like_flag = next.is_some_and(|n| {
                        n == "--help" || n == "-h" || self.options.iter().any(|o| o.long == *n)
                    });
                    let Some(v) = next.filter(|_| !looks_like_flag) else {
                        return Err(CliError::Usage(format!(
                            "{} needs a value <{placeholder}>",
                            spec.long,
                        )));
                    };
                    parsed.values.push((spec.long, v.clone()));
                    i += 2;
                } else {
                    parsed.flags.push(spec.long);
                    i += 1;
                }
            } else {
                match &self.positional {
                    None => {
                        return Err(CliError::Usage(format!("unexpected argument {arg}")));
                    }
                    Some(p) if !p.many && !parsed.positionals.is_empty() => {
                        return Err(CliError::Usage(format!(
                            "unexpected extra argument {arg} (only one {} allowed)",
                            p.name
                        )));
                    }
                    Some(_) => parsed.positionals.push(arg.to_string()),
                }
                i += 1;
            }
        }
        if let Some(p) = &self.positional {
            if p.required && parsed.positionals.is_empty() {
                return Err(CliError::Usage(format!("missing {} argument", p.name)));
            }
        }
        Ok(parsed)
    }

    /// Parses [`std::env::args`], printing help to stdout (exit 0) or a
    /// usage error to stderr (exit 2) as appropriate.
    #[must_use]
    pub fn parse_env(&self) -> ParsedArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match self.parse(&args) {
            Ok(parsed) => parsed,
            Err(CliError::Help(text)) => {
                println!("{text}");
                std::process::exit(0);
            }
            Err(CliError::Usage(msg)) => {
                eprintln!("error: {msg}\n");
                eprintln!("{}", self.help());
                std::process::exit(2);
            }
        }
    }
}

impl ParsedArgs {
    /// Whether a boolean flag was given.
    #[must_use]
    pub fn flag(&self, long: &str) -> bool {
        self.flags.contains(&long)
    }

    /// The raw value of a valued flag, if given (last occurrence wins).
    #[must_use]
    pub fn get(&self, long: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| *f == long)
            .map(|(_, v)| v.as_str())
    }

    /// Every value a repeatable flag was given, in argument order.
    #[must_use]
    pub fn get_all(&self, long: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(f, _)| *f == long)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Parses a valued flag.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when the value does not parse as `T`.
    pub fn value<T: std::str::FromStr>(&self, long: &str) -> Result<Option<T>, CliError> {
        match self.get(long) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{long} got invalid value '{raw}'"))),
        }
    }

    /// Parses a valued flag, falling back to `default`; prints a usage
    /// error and exits 2 on a malformed value (binary-side helper).
    #[must_use]
    pub fn value_or<T: std::str::FromStr>(&self, long: &str, default: T) -> T {
        self.value_opt(long).unwrap_or(default)
    }

    /// Parses a valued flag if present; prints a usage error and exits 2
    /// on a malformed value (binary-side helper).
    #[must_use]
    pub fn value_opt<T: std::str::FromStr>(&self, long: &str) -> Option<T> {
        match self.value::<T>(long) {
            Ok(v) => v,
            Err(CliError::Usage(msg)) | Err(CliError::Help(msg)) => {
                eprintln!("error: {msg}\n");
                eprintln!("{}", self.usage);
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: CliSpec = CliSpec {
        bin: "demo",
        about: "test spec",
        positional: Some(PositionalSpec {
            name: "<id>",
            help: "benchmark ids",
            many: true,
            required: false,
        }),
        options: &[
            OptSpec {
                long: "--jobs",
                value: Some("J"),
                help: "worker threads",
            },
            OptSpec {
                long: "--quick",
                value: None,
                help: "fast mode",
            },
        ],
    };

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_values_and_positionals() {
        let p = SPEC
            .parse(&argv(&["b01", "--jobs", "4", "--quick", "b02"]))
            .unwrap();
        assert!(p.flag("--quick"));
        assert_eq!(p.value::<usize>("--jobs").unwrap(), Some(4));
        assert_eq!(p.positionals, vec!["b01", "b02"]);
    }

    #[test]
    fn unknown_flag_is_a_usage_error() {
        match SPEC.parse(&argv(&["--frobnicate"])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("--frobnicate")),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn missing_value_is_a_usage_error() {
        match SPEC.parse(&argv(&["--jobs"])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("--jobs")),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_value_is_a_usage_error() {
        let p = SPEC.parse(&argv(&["--jobs", "many"])).unwrap();
        match p.value::<usize>("--jobs") {
            Err(CliError::Usage(msg)) => assert!(msg.contains("many")),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn help_flag_returns_generated_text() {
        match SPEC.parse(&argv(&["--help"])) {
            Err(CliError::Help(text)) => {
                assert!(text.contains("--jobs"));
                assert!(text.contains("--quick"));
                assert!(text.contains("usage: demo"));
            }
            other => panic!("expected help, got {other:?}"),
        }
    }

    #[test]
    fn positional_policy_is_enforced() {
        const NO_POS: CliSpec = CliSpec {
            bin: "nopos",
            about: "",
            positional: None,
            options: &[],
        };
        assert!(matches!(
            NO_POS.parse(&argv(&["stray"])),
            Err(CliError::Usage(_))
        ));

        const ONE_REQ: CliSpec = CliSpec {
            bin: "one",
            about: "",
            positional: Some(PositionalSpec {
                name: "<design>",
                help: "",
                many: false,
                required: true,
            }),
            options: &[],
        };
        assert!(matches!(ONE_REQ.parse(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            ONE_REQ.parse(&argv(&["a", "b"])),
            Err(CliError::Usage(_))
        ));
        assert!(ONE_REQ.parse(&argv(&["a"])).is_ok());
    }

    #[test]
    fn last_value_wins() {
        let p = SPEC.parse(&argv(&["--jobs", "2", "--jobs", "8"])).unwrap();
        assert_eq!(p.value::<usize>("--jobs").unwrap(), Some(8));
    }

    #[test]
    fn forgotten_value_does_not_swallow_the_next_flag() {
        // `--jobs --quick` is a missing value, not jobs="--quick".
        match SPEC.parse(&argv(&["--jobs", "--quick"])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("--jobs")),
            other => panic!("expected usage error, got {other:?}"),
        }
        // Undeclared tokens (e.g. negative numbers) still pass as values.
        let p = SPEC.parse(&argv(&["--jobs", "-1"])).unwrap();
        assert_eq!(p.get("--jobs"), Some("-1"));
    }
}
