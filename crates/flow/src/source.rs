//! Pluggable circuit sources: everything the pipeline can ingest.
//!
//! The DATE 2002 flow consumes synthesized gate-level netlists; this
//! reproduction additionally builds circuits from the `pl-rtl` DSL and
//! generates random ones for differential testing. [`CircuitSource`]
//! makes the three front doors interchangeable: every variant resolves to
//! a named gate-level [`Netlist`] that the downstream stages treat
//! identically.

use std::path::PathBuf;

use pl_netlist::blif::BlifNote;
use pl_netlist::{Netlist, NodeId};

use crate::error::FlowError;

/// Minimal deterministic LCG (Knuth MMIX constants) shared by the random
/// circuit source, the Criterion benches, the `bench_report` binary, and
/// the engine-equivalence suite, so every harness drives the same streams
/// from the same seeds without a dev-dependency.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// A pseudo-random bool (top bit).
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A pseudo-random index below `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Deterministic random input vectors from [`Lcg`].
#[must_use]
pub fn lcg_vectors(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = Lcg::new(seed);
    (0..count)
        .map(|_| (0..n_inputs).map(|_| rng.next_bool()).collect())
        .collect()
}

/// Shape parameters of a generated random circuit.
///
/// The recipe is the engine-equivalence suite's generator: a pool of
/// inputs and DFFs extended by random small LUTs, with DFF feedback and a
/// few outputs — small sequential circuits that still exercise state,
/// reconvergence and early-evaluation opportunities.
#[derive(Debug, Clone)]
pub struct RandomSpec {
    /// Seed for the deterministic LCG stream.
    pub seed: u64,
}

impl RandomSpec {
    /// A spec from a bare seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

/// Generates the random gate-level netlist for `spec`.
///
/// Deterministic in the seed: the LCG stream is advanced until a draw
/// validates, so every seed maps to exactly one circuit.
#[must_use]
pub fn random_netlist(spec: &RandomSpec) -> Netlist {
    let mut rng = Lcg::new(spec.seed);
    loop {
        if let Some(n) = random_netlist_draw(&mut rng) {
            return n;
        }
    }
}

/// One random netlist from the LCG stream, or `None` when the draw fails
/// validation (the caller advances the stream and retries).
///
/// Exposed so differential test suites can drive the exact generator the
/// [`CircuitSource::Random`] source uses, instead of maintaining a copy
/// of the recipe.
pub fn random_netlist_draw(rng: &mut Lcg) -> Option<Netlist> {
    let num_inputs = 2 + rng.below(3);
    let num_dffs = 1 + rng.below(3);
    let num_luts = 3 + rng.below(20);
    let num_outputs = 1 + rng.below(4);

    let mut n = Netlist::new("random");
    let mut pool: Vec<NodeId> = Vec::new();
    for i in 0..num_inputs {
        pool.push(n.add_input(format!("i{i}")));
    }
    let dffs: Vec<NodeId> = (0..num_dffs).map(|k| n.add_dff(k % 2 == 0)).collect();
    pool.extend(&dffs);
    for _ in 0..num_luts {
        let arity = 1 + rng.below(3);
        let srcs: Vec<NodeId> = (0..arity).map(|_| pool[rng.below(pool.len())]).collect();
        let table = pl_boolfn::TruthTable::from_bits(srcs.len(), rng.next_u64());
        pool.push(n.add_lut(table, srcs).expect("arity matches"));
    }
    for (k, &d) in dffs.iter().enumerate() {
        n.set_dff_input(d, pool[(k * 7 + 3) % pool.len()])
            .expect("valid ids");
    }
    for k in 0..num_outputs {
        n.set_output(
            format!("o{k}"),
            pool[pool.len() - 1 - (k % pool.len().min(4))],
        );
    }
    if n.validate().is_err() {
        return None;
    }
    Some(n)
}

/// Where a circuit comes from.
///
/// Every variant resolves to a gate-level [`Netlist`] via
/// [`CircuitSource::ingest_netlist`]; the pipeline's ingest stage wraps
/// that with timing and a report.
#[derive(Debug, Clone)]
pub enum CircuitSource {
    /// An ITC'99 catalog entry, elaborated from the `pl-rtl` DSL.
    Catalog(pl_itc99::Benchmark),
    /// A BLIF file on disk (SIS/ABC dialect accepted).
    BlifFile(PathBuf),
    /// In-memory BLIF text (`name` labels reports and error contexts).
    BlifText {
        /// Label used in reports and error contexts.
        name: String,
        /// The BLIF source text.
        text: String,
    },
    /// A pre-built gate-level netlist handed in directly.
    Netlist {
        /// Label used in reports and error contexts.
        name: String,
        /// The netlist itself.
        netlist: Netlist,
    },
    /// A generated random circuit (differential-testing workload).
    Random(RandomSpec),
}

impl CircuitSource {
    /// Resolves a command-line design spec: an ITC'99 id (`b01`..`b15`)
    /// hits the catalog, anything else is treated as a BLIF file path.
    #[must_use]
    pub fn from_spec(spec: &str) -> Self {
        match pl_itc99::by_id(spec) {
            Some(bench) => CircuitSource::Catalog(bench),
            None => CircuitSource::BlifFile(PathBuf::from(spec)),
        }
    }

    /// The catalog source for an ITC'99 id, if it exists.
    #[must_use]
    pub fn catalog(id: &str) -> Option<Self> {
        pl_itc99::by_id(id).map(CircuitSource::Catalog)
    }

    /// Human-readable label for reports (`b07`, a file path, `random:7`).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            CircuitSource::Catalog(b) => b.id.to_string(),
            CircuitSource::BlifFile(path) => path.display().to_string(),
            CircuitSource::BlifText { name, .. } | CircuitSource::Netlist { name, .. } => {
                name.clone()
            }
            CircuitSource::Random(spec) => format!("random:{:#x}", spec.seed),
        }
    }

    /// Short description of the source kind for stage reports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            CircuitSource::Catalog(_) => "rtl-catalog",
            CircuitSource::BlifFile(_) => "blif-file",
            CircuitSource::BlifText { .. } => "blif-text",
            CircuitSource::Netlist { .. } => "netlist",
            CircuitSource::Random(_) => "random",
        }
    }

    /// Resolves the source to a gate-level netlist.
    ///
    /// Catalog entries elaborate their RTL module (which runs the standard
    /// cleanup passes); BLIF variants parse; `Netlist` clones; `Random`
    /// generates deterministically from its seed.
    ///
    /// # Errors
    ///
    /// I/O failures for [`CircuitSource::BlifFile`], parse errors for the
    /// BLIF variants, elaboration errors for catalog entries.
    pub fn ingest_netlist(&self) -> Result<Netlist, FlowError> {
        self.ingest_netlist_with_notes().map(|(n, _)| n)
    }

    /// Like [`CircuitSource::ingest_netlist`], but also returns the
    /// ingest-time observations (see [`pl_netlist::blif::BlifNote`]) that
    /// the lint stage surfaces as `PL0009`. Only the BLIF variants produce
    /// notes today; every other source returns an empty list.
    ///
    /// # Errors
    ///
    /// Same as [`CircuitSource::ingest_netlist`].
    pub fn ingest_netlist_with_notes(&self) -> Result<(Netlist, Vec<BlifNote>), FlowError> {
        match self {
            CircuitSource::Catalog(bench) => Ok(((bench.build)().elaborate()?, Vec::new())),
            CircuitSource::BlifFile(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| FlowError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
                Ok(pl_netlist::blif::from_blif_with_notes(&text)?)
            }
            CircuitSource::BlifText { text, .. } => {
                Ok(pl_netlist::blif::from_blif_with_notes(text)?)
            }
            CircuitSource::Netlist { netlist, .. } => Ok((netlist.clone(), Vec::new())),
            CircuitSource::Random(spec) => Ok((random_netlist(spec), Vec::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_resolution_prefers_catalog_ids() {
        assert!(matches!(
            CircuitSource::from_spec("b05"),
            CircuitSource::Catalog(_)
        ));
        assert!(matches!(
            CircuitSource::from_spec("designs/foo.blif"),
            CircuitSource::BlifFile(_)
        ));
    }

    #[test]
    fn random_source_is_deterministic_in_seed() {
        let a = random_netlist(&RandomSpec::new(42));
        let b = random_netlist(&RandomSpec::new(42));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.inputs().len(), b.inputs().len());
        let c = random_netlist(&RandomSpec::new(43));
        // Different seeds draw different shapes (this pair does).
        assert!(a.len() != c.len() || a.inputs().len() != c.inputs().len());
    }

    #[test]
    fn blif_text_source_ingests() {
        let src = CircuitSource::BlifText {
            name: "inline".into(),
            text: ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n".into(),
        };
        let n = src.ingest_netlist().unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(src.kind(), "blif-text");
    }

    #[test]
    fn missing_blif_file_reports_path() {
        let src = CircuitSource::BlifFile(PathBuf::from("/nonexistent/x.blif"));
        match src.ingest_netlist() {
            Err(FlowError::Io { path, .. }) => assert!(path.contains("x.blif")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
