//! The compile pipeline as a first-class library.
//!
//! The DATE 2002 paper maps *synthesized gate-level netlists* onto phased
//! logic; this crate is the architecture that lets anything walk through
//! that flow — not just the built-in ITC'99 catalog. It factors the
//! pipeline that used to live inside the benchmark harness into two
//! orthogonal pieces:
//!
//! * [`CircuitSource`] — pluggable front doors. An RTL catalog entry, a
//!   BLIF file on disk (SIS/ABC dialect), in-memory BLIF text, a
//!   pre-built [`pl_netlist::Netlist`], or a seeded random circuit all
//!   resolve to the same gate-level netlist.
//! * [`Pipeline`] — explicit, separately-callable stages:
//!
//!   ```text
//!   ingest → lint → optimize → techmap → phased → lint → early_eval → simulate → verify
//!   ```
//!
//!   Each stage returns a typed artifact ([`Ingested`], [`Optimized`],
//!   [`Mapped`], [`Phased`], [`EarlyEvaled`], [`Simulated`]) plus a
//!   per-stage report with wall-clock timing, so callers can stop at any
//!   layer. [`Pipeline::run`] chains them all and returns
//!   [`FlowArtifacts`]. The two lint passes (static diagnostics from the
//!   `pl-lint` crate, stable `PL####` codes) run on the ingested netlist
//!   and on the mapped phased-logic graph; a deny-level finding aborts the
//!   run with [`FlowError::Lint`]. [`Pipeline::lint_session`] is the
//!   non-aborting, report-everything entry point behind `plc lint`.
//!
//! The `plc` binary is the command-line face of this crate; the `pl-bench`
//! harness regenerates the paper's Table 3 as a thin wrapper over
//! [`Pipeline::run`]. [`cli`] hosts the tiny argument parser all
//! workspace binaries share.
//!
//! # Example
//!
//! Run a circuit from BLIF text end-to-end and inspect each layer:
//!
//! ```
//! use pl_flow::{CircuitSource, FlowOptions, Pipeline};
//!
//! let blif = "\
//! .model toggle
//! .inputs en
//! .outputs q
//! .latch next q 0
//! .names en q next
//! 10 1
//! 01 1
//! .end
//! ";
//! let source = CircuitSource::BlifText { name: "toggle".into(), text: blif.into() };
//! let pipeline = Pipeline::new(FlowOptions { vectors: 16, ..FlowOptions::default() });
//!
//! // Stage by stage...
//! let ingested = pipeline.ingest(&source).unwrap();
//! assert_eq!(ingested.report.dffs, 1);
//! let mapped = pipeline.techmap(pipeline.optimize(ingested).unwrap()).unwrap();
//! assert!(mapped.report.lut_size == 4);
//!
//! // ...or all at once.
//! let art = pipeline.run(&source).unwrap();
//! assert_eq!(art.outputs.len(), 16);
//! assert!(art.report.verify.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod eco;
mod error;
mod lint;
mod pipeline;
mod source;

pub use eco::{EcoEdit, EcoOutcome, EcoReport, EcoSession, NodeRef};
pub use error::FlowError;
pub use lint::LintSession;
pub use pipeline::{
    EarlyEvaled, EeStageReport, FlowArtifacts, FlowOptions, FlowReport, IngestReport, Ingested,
    LintStageReport, Mapped, OptimizeReport, Optimized, Phased, PhasedReport, Pipeline, SimReport,
    Simulated, TechmapReport, VerifyReport,
};
pub use pl_lint::{LintOptions, LintReport};
pub use pl_sim::{QueueKind, SweepRecovery};
pub use source::{
    lcg_vectors, random_netlist, random_netlist_draw, CircuitSource, Lcg, RandomSpec,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_catalog_run_produces_consistent_artifacts() {
        let pipeline = Pipeline::new(FlowOptions {
            vectors: 10,
            ..FlowOptions::default()
        });
        let src = CircuitSource::catalog("b02").expect("b02 exists");
        let art = pipeline.run(&src).unwrap();
        assert_eq!(art.name, "b02");
        assert_eq!(art.outputs.len(), 10);
        assert_eq!(art.report.phased.logic_gates, art.plain.num_logic_gates());
        assert_eq!(art.pairs.len(), art.report.early_eval.pairs);
        assert!(art.stats_ee.is_some());
        assert!(art.report.verify.is_some());
        assert!(art.report.total_secs() > 0.0);
    }

    #[test]
    fn ee_disabled_runs_plain_only() {
        let pipeline = Pipeline::new(FlowOptions {
            vectors: 5,
            ee_enabled: false,
            verify: false,
            ..FlowOptions::default()
        });
        let art = pipeline
            .run(&CircuitSource::catalog("b01").unwrap())
            .unwrap();
        assert!(art.ee.is_none());
        assert!(art.stats_ee.is_none());
        assert!(art.pairs.is_empty());
        assert!(!art.report.early_eval.enabled);
        assert!(art.report.verify.is_none());
    }

    #[test]
    fn simulate_is_jobs_invariant() {
        let src = CircuitSource::catalog("b06").unwrap();
        let base = Pipeline::new(FlowOptions {
            vectors: 8,
            verify: false,
            ..FlowOptions::default()
        })
        .run(&src)
        .unwrap();
        for jobs in [2, 4] {
            let par = Pipeline::new(FlowOptions {
                vectors: 8,
                verify: false,
                jobs,
                ..FlowOptions::default()
            })
            .run(&src)
            .unwrap();
            assert_eq!(par.outputs, base.outputs, "jobs={jobs}");
            assert_eq!(
                par.stats_plain.per_vector, base.stats_plain.per_vector,
                "jobs={jobs}"
            );
            assert_eq!(
                par.stats_ee.as_ref().unwrap().per_vector,
                base.stats_ee.as_ref().unwrap().per_vector,
                "jobs={jobs}"
            );
        }
    }

    /// The streamed protocol (window: Some) must produce the same output
    /// VALUES as the per-vector protocol (marked-graph determinism), be
    /// jobs-invariant, survive the synchronous cross-check, and report
    /// makespan/throughput instead of per-vector latencies.
    #[test]
    fn windowed_simulate_matches_per_vector_outputs_and_verifies() {
        let src = CircuitSource::catalog("b03").unwrap();
        let per_vector = Pipeline::new(FlowOptions {
            vectors: 10,
            verify: false,
            ..FlowOptions::default()
        })
        .run(&src)
        .unwrap();
        let baseline = Pipeline::new(FlowOptions {
            vectors: 10,
            window: Some(3),
            jobs: 1,
            ..FlowOptions::default()
        })
        .run(&src)
        .unwrap();
        assert_eq!(baseline.outputs, per_vector.outputs);
        assert!(baseline.report.verify.is_some(), "sync cross-check ran");
        assert!(
            baseline.stats_plain.is_empty(),
            "streamed mode has no per-vector stats"
        );
        let stream = baseline.stream_plain.as_ref().expect("streamed outcome");
        assert!(stream.makespan > 0.0);
        assert!(stream.throughput > 0.0);
        assert!(baseline.stream_ee.is_some());
        for jobs in [2, 4] {
            let par = Pipeline::new(FlowOptions {
                vectors: 10,
                window: Some(3),
                jobs,
                verify: false,
                ..FlowOptions::default()
            })
            .run(&src)
            .unwrap();
            assert_eq!(par.outputs, baseline.outputs, "jobs={jobs}");
            let (p, b) = (
                par.stream_plain.unwrap(),
                baseline.stream_plain.clone().unwrap(),
            );
            assert_eq!(p, b, "jobs={jobs}: streamed outcome diverged");
        }
    }

    /// A zero streaming window is caught as a typed
    /// [`FlowError::Options`] before any stage runs (library callers get
    /// the same rejection as plc's flag checks), not as a panic deep
    /// inside the pipelined sweep.
    #[test]
    fn zero_window_is_a_typed_error() {
        let pipeline = Pipeline::new(FlowOptions {
            vectors: 4,
            window: Some(0),
            verify: false,
            ..FlowOptions::default()
        });
        match pipeline.run(&CircuitSource::catalog("b01").unwrap()) {
            Err(FlowError::Options { message }) => {
                assert!(message.contains("window"), "names the option: {message}");
            }
            other => panic!("expected FlowError::Options, got {other:?}"),
        }
    }

    /// Every flag combination `plc` rejects at the CLI layer is also
    /// rejected by [`FlowOptions::validate`] on the programmatic path —
    /// the daemon/library bugfix this PR hoists out of `src/bin/plc.rs`.
    #[test]
    fn validate_rejects_every_cli_rejected_combination() {
        let base = FlowOptions {
            vectors: 4,
            verify: false,
            ..FlowOptions::default()
        };
        let dir = Some(std::path::PathBuf::from("ckpt"));
        let cases: Vec<(FlowOptions, &str)> = vec![
            (
                FlowOptions {
                    map: pl_techmap::MapOptions {
                        lut_size: 7,
                        ..base.map.clone()
                    },
                    ..base.clone()
                },
                "--lut-size",
            ),
            (
                FlowOptions {
                    window: Some(0),
                    ..base.clone()
                },
                "--window must be at least 1",
            ),
            (
                FlowOptions {
                    lanes: Some(7),
                    ..base.clone()
                },
                "--lanes 7 is not a supported width",
            ),
            (
                FlowOptions {
                    lanes: Some(64),
                    window: Some(4),
                    ..base.clone()
                },
                "--lanes is mutually exclusive with --window",
            ),
            (
                FlowOptions {
                    lanes: Some(64),
                    checkpoint_dir: dir.clone(),
                    ..base.clone()
                },
                "--lanes is mutually exclusive with --checkpoint-dir",
            ),
            (
                FlowOptions {
                    checkpoint_dir: dir.clone(),
                    ..base.clone()
                },
                "--checkpoint-dir requires --window",
            ),
            (
                FlowOptions {
                    resume: true,
                    ..base.clone()
                },
                "--resume requires --checkpoint-dir",
            ),
            (
                FlowOptions {
                    max_retries: Some(3),
                    ..base.clone()
                },
                "--max-retries requires --checkpoint-dir",
            ),
        ];
        for (opts, expect) in cases {
            match opts.validate() {
                Err(FlowError::Options { message }) => {
                    assert!(
                        message.contains(expect),
                        "expected {expect:?} in {message:?}"
                    );
                }
                other => panic!("expected FlowError::Options for {expect:?}, got {other:?}"),
            }
            // The same rejection fires from every pipeline entry point.
            let pipeline = Pipeline::new(opts);
            let src = CircuitSource::catalog("b01").unwrap();
            assert!(matches!(pipeline.run(&src), Err(FlowError::Options { .. })));
            assert!(matches!(
                pipeline.eco_session(&src),
                Err(FlowError::Options { .. })
            ));
        }
        // Valid combinations still pass.
        base.validate().unwrap();
        FlowOptions {
            lanes: Some(64),
            ..base.clone()
        }
        .validate()
        .unwrap();
        FlowOptions {
            window: Some(8),
            checkpoint_dir: dir,
            resume: true,
            max_retries: Some(1),
            ..base
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn random_source_runs_end_to_end() {
        let pipeline = Pipeline::new(FlowOptions {
            vectors: 6,
            ..FlowOptions::default()
        });
        let art = pipeline
            .run(&CircuitSource::Random(RandomSpec::new(0xF10)))
            .unwrap();
        assert_eq!(art.outputs.len(), 6);
        assert!(art.report.verify.is_some());
    }

    #[test]
    fn optimize_stage_cleans_when_enabled() {
        // A netlist with a dead LUT: cleanup must drop it, pass-through
        // must keep it.
        let mut n = pl_netlist::Netlist::new("dead");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let live = n.add_and2(a, b).unwrap();
        let _dead = n.add_xor2(a, b).unwrap();
        n.set_output("y", live);
        let src = CircuitSource::Netlist {
            name: "dead".into(),
            netlist: n,
        };

        let keep = Pipeline::new(FlowOptions::default());
        let kept = keep.optimize(keep.ingest(&src).unwrap()).unwrap();
        assert!(!kept.report.ran);
        assert_eq!(kept.report.nodes_before, kept.report.nodes_after);

        let clean = Pipeline::new(FlowOptions {
            optimize: true,
            ..FlowOptions::default()
        });
        let cleaned = clean.optimize(clean.ingest(&src).unwrap()).unwrap();
        assert!(cleaned.report.ran);
        assert!(cleaned.report.nodes_after < cleaned.report.nodes_before);
    }
}
