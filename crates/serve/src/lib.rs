//! Simulation-as-a-service for the phased-logic flow: the `pld`
//! daemon (ROADMAP item 1).
//!
//! Every `plc` invocation compiles its design from scratch; a
//! long-lived server should compile once and answer many sessions from
//! the warm artifact. This crate is that server, as a library:
//!
//! * [`wire`] — hand-rolled length-prefixed framing over TCP, in the
//!   style of `pl_sim::checkpoint::wire`: magic, kind byte, bounded
//!   length, payload CRC32. Every malformed-frame class is rejected
//!   typed — never a panic, never a hang (per-connection read
//!   timeouts), never an attacker-sized allocation.
//! * [`proto`] — the request/response model. Requests carry the same
//!   options as the `plc` command line ([`RequestOptions`] expands to
//!   `FlowOptions` with identical wiring, then goes through
//!   `FlowOptions::validate` server-side); responses carry the
//!   deterministic digest lines.
//! * [`cache`] — an LRU of warm [`pl_flow::EcoSession`]s keyed by
//!   source digest × options fingerprint, shared across sessions
//!   behind `Arc`s.
//! * [`server`] — thread-per-connection [`PldServer`]; cache hits run
//!   a **per-session simulator** over the shared compiled artifact and
//!   cross-check the cached digest; ECO requests clone the warm
//!   session and apply edits as incremental recompiles (ROADMAP item 5
//!   follow-on: edits hit warm compile state, never a from-scratch
//!   rebuild).
//! * [`client`] — the blocking client used by `plc client`.
//! * [`digest`] — the digest-line formatting shared with `plc`, so
//!   "server response ≡ in-process run" is checkable with `diff`.
//!
//! # Determinism contract
//!
//! A response is a pure function of (design, options, edits): it must
//! be bit-identical to an in-process run with the same options — under
//! concurrent sessions, cache eviction and churn, and re-compiles
//! after eviction. `tests/serve_equivalence.rs` pins all of this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod digest;
mod error;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::Client;
pub use digest::{outputs_digest, render_digest_block};
pub use error::ServeError;
pub use proto::{
    DesignSpec, DigestTriple, EcoEditResult, Request, RequestOptions, Response, ServerStats,
};
pub use server::{PldServer, ServerConfig};
