//! The `pld` request/response model and its binary encoding.
//!
//! Requests carry the same options the `plc` command line does, and
//! responses carry the deterministic digest lines — the whole protocol
//! is a pure function of (design, options, edits), which is what makes
//! the server's bit-identity contract testable.
//!
//! # Kinds
//!
//! | byte   | message      |
//! |--------|--------------|
//! | `0x01` | Compile      |
//! | `0x02` | Eco          |
//! | `0x03` | Stats        |
//! | `0x04` | Shutdown     |
//! | `0x81` | CompileOk    |
//! | `0x82` | EcoOk        |
//! | `0x83` | StatsOk      |
//! | `0x84` | ShutdownOk   |
//! | `0xE0` | Error        |
//!
//! Every other kind byte is rejected typed. Unknown flag bits, queue
//! bytes and option tags are likewise rejected rather than ignored, so
//! a skewed client cannot silently get different semantics.

use crate::error::ServeError;
use crate::wire::{push_string, Cursor};
use pl_flow::{FlowOptions, QueueKind};
use pl_sim::Fnv64;

/// Request kind bytes.
pub const REQ_COMPILE: u8 = 0x01;
/// See [`REQ_COMPILE`].
pub const REQ_ECO: u8 = 0x02;
/// See [`REQ_COMPILE`].
pub const REQ_STATS: u8 = 0x03;
/// See [`REQ_COMPILE`].
pub const REQ_SHUTDOWN: u8 = 0x04;

/// Response kind bytes.
pub const RESP_COMPILE: u8 = 0x81;
/// See [`RESP_COMPILE`].
pub const RESP_ECO: u8 = 0x82;
/// See [`RESP_COMPILE`].
pub const RESP_STATS: u8 = 0x83;
/// See [`RESP_COMPILE`].
pub const RESP_SHUTDOWN: u8 = 0x84;
/// See [`RESP_COMPILE`].
pub const RESP_ERROR: u8 = 0xE0;

/// Error codes carried by [`Response::Error`].
pub const ERR_FRAME: u16 = 1;
/// The request decoded but was semantically malformed.
pub const ERR_REQUEST: u16 = 2;
/// `FlowOptions::validate` rejected the option combination.
pub const ERR_OPTIONS: u16 = 3;
/// The compile pipeline failed.
pub const ERR_FLOW: u16 = 4;

/// What to compile: a spec string the server resolves exactly like
/// `plc` does (catalog name, `.blif` path on the *server's*
/// filesystem, `rand:` spec), or BLIF text shipped inline so the
/// client needs no shared filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignSpec {
    /// Resolved server-side via `CircuitSource::from_spec`.
    Spec(String),
    /// In-memory BLIF text.
    BlifText {
        /// Design label.
        name: String,
        /// The BLIF source.
        text: String,
    },
}

impl DesignSpec {
    /// Stable digest of the design identity — half of the cache key.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        match self {
            DesignSpec::Spec(s) => {
                h.mix(0);
                mix_str(&mut h, s);
            }
            DesignSpec::BlifText { name, text } => {
                h.mix(1);
                mix_str(&mut h, name);
                mix_str(&mut h, text);
            }
        }
        h.finish()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DesignSpec::Spec(s) => {
                out.push(0);
                push_string(out, s);
            }
            DesignSpec::BlifText { name, text } => {
                out.push(1);
                push_string(out, name);
                push_string(out, text);
            }
        }
    }

    fn decode(c: &mut Cursor<'_>) -> Result<Self, ServeError> {
        match c.u8("design tag")? {
            0 => Ok(DesignSpec::Spec(c.string("design spec")?)),
            1 => Ok(DesignSpec::BlifText {
                name: c.string("design name")?,
                text: c.string("design text")?,
            }),
            other => Err(ServeError::Request {
                message: format!("unknown design tag {other}"),
            }),
        }
    }
}

/// The options a request carries — the same knobs as the `plc` command
/// line, with the same defaults, so a daemon response is comparable
/// byte-for-byte to an in-process run.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOptions {
    /// Vectors to simulate.
    pub vectors: usize,
    /// Input-vector seed.
    pub seed: u64,
    /// Worker threads for the sweep.
    pub jobs: usize,
    /// LUT arity for technology mapping.
    pub lut_size: usize,
    /// EE cost threshold (meaningful with [`RequestOptions::ee`]).
    pub threshold: f64,
    /// Enable the early-evaluation transform.
    pub ee: bool,
    /// Cross-check against the synchronous reference.
    pub verify: bool,
    /// Run the optimize stage.
    pub optimize: bool,
    /// Skip the lint stages.
    pub no_lint: bool,
    /// Event-queue implementation.
    pub queue: QueueKind,
    /// Streamed protocol window (`None` = per-vector).
    pub window: Option<usize>,
    /// Lane width (`None` = scalar; validation enforces `{1, 64}`).
    pub lanes: Option<usize>,
}

impl Default for RequestOptions {
    fn default() -> Self {
        let flow = FlowOptions::default();
        RequestOptions {
            vectors: flow.vectors,
            seed: flow.seed,
            jobs: flow.jobs,
            lut_size: flow.map.lut_size,
            threshold: flow.ee.cost_threshold,
            ee: false,
            verify: false,
            optimize: false,
            no_lint: false,
            queue: flow.queue,
            window: None,
            lanes: None,
        }
    }
}

impl RequestOptions {
    /// Expands to full [`FlowOptions`], wiring each field exactly like
    /// `plc`'s flag handling does — this is the function that makes
    /// "bit-identical to an in-process run with the same options" well
    /// defined. The result still goes through `FlowOptions::validate`
    /// server-side.
    pub fn to_flow_options(&self) -> FlowOptions {
        let mut o = FlowOptions {
            vectors: self.vectors,
            seed: self.seed,
            jobs: self.jobs,
            ee_enabled: self.ee,
            verify: self.verify,
            optimize: self.optimize,
            queue: self.queue,
            window: self.window,
            lanes: self.lanes,
            ..FlowOptions::default()
        };
        o.map.lut_size = self.lut_size;
        o.ee.cost_threshold = self.threshold;
        o.lint.enabled = !self.no_lint;
        o
    }

    /// Stable digest of every field — the other half of the cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.mix(self.vectors as u64);
        h.mix(self.seed);
        h.mix(self.jobs as u64);
        h.mix(self.lut_size as u64);
        h.mix(self.threshold.to_bits());
        h.mix(u64::from(self.flags()));
        h.mix(u64::from(queue_byte(self.queue)));
        mix_opt(&mut h, self.window);
        mix_opt(&mut h, self.lanes);
        h.finish()
    }

    fn flags(&self) -> u8 {
        u8::from(self.ee)
            | u8::from(self.verify) << 1
            | u8::from(self.optimize) << 2
            | u8::from(self.no_lint) << 3
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.vectors as u64).to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.jobs as u64).to_le_bytes());
        out.extend_from_slice(&(self.lut_size as u64).to_le_bytes());
        out.extend_from_slice(&self.threshold.to_bits().to_le_bytes());
        out.push(self.flags());
        out.push(queue_byte(self.queue));
        encode_opt(out, self.window);
        encode_opt(out, self.lanes);
    }

    fn decode(c: &mut Cursor<'_>) -> Result<Self, ServeError> {
        let vectors = usize_field(c, "vectors")?;
        let seed = c.u64("seed")?;
        let jobs = usize_field(c, "jobs")?;
        let lut_size = usize_field(c, "lut size")?;
        let threshold = f64::from_bits(c.u64("threshold")?);
        let flags = c.u8("flags")?;
        if flags & !0b1111 != 0 {
            return Err(ServeError::Request {
                message: format!("unknown option flag bits {:#04x}", flags & !0b1111),
            });
        }
        let queue = match c.u8("queue")? {
            0 => QueueKind::Heap,
            1 => QueueKind::Ladder,
            other => {
                return Err(ServeError::Request {
                    message: format!("unknown queue byte {other}"),
                });
            }
        };
        let window = decode_opt(c, "window")?;
        let lanes = decode_opt(c, "lanes")?;
        Ok(RequestOptions {
            vectors,
            seed,
            jobs,
            lut_size,
            threshold,
            ee: flags & 1 != 0,
            verify: flags & 2 != 0,
            optimize: flags & 4 != 0,
            no_lint: flags & 8 != 0,
            queue,
            window,
            lanes,
        })
    }
}

fn queue_byte(q: QueueKind) -> u8 {
    match q {
        QueueKind::Heap => 0,
        QueueKind::Ladder => 1,
    }
}

fn mix_str(h: &mut Fnv64, s: &str) {
    h.mix(s.len() as u64);
    for b in s.bytes() {
        h.mix(u64::from(b));
    }
}

fn mix_opt(h: &mut Fnv64, v: Option<usize>) {
    match v {
        None => h.mix(0),
        Some(x) => {
            h.mix(1);
            h.mix(x as u64);
        }
    }
}

fn encode_opt(out: &mut Vec<u8>, v: Option<usize>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&(x as u64).to_le_bytes());
        }
    }
}

fn decode_opt(c: &mut Cursor<'_>, what: &'static str) -> Result<Option<usize>, ServeError> {
    match c.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(usize_field(c, what)?)),
        other => Err(ServeError::Request {
            message: format!("{what}: unknown option tag {other}"),
        }),
    }
}

fn usize_field(c: &mut Cursor<'_>, what: &'static str) -> Result<usize, ServeError> {
    let raw = c.u64(what)?;
    usize::try_from(raw).map_err(|_| ServeError::Request {
        message: format!("{what}: {raw} does not fit this target"),
    })
}

/// One request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile (or fetch from cache) and sweep a design.
    Compile {
        /// What to compile.
        design: DesignSpec,
        /// Full option set.
        options: RequestOptions,
    },
    /// Apply ECO edits against the warm compiled entry, one incremental
    /// recompile per edit — exactly `plc eco`'s semantics.
    Eco {
        /// What to compile.
        design: DesignSpec,
        /// Full option set.
        options: RequestOptions,
        /// Edit specs, `EcoEdit::parse` grammar, applied in order.
        edits: Vec<String>,
    },
    /// Read the server's cache/choke counters.
    Stats,
    /// Stop the daemon after acknowledging.
    Shutdown,
}

impl Request {
    /// Frame kind + payload.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        match self {
            Request::Compile { design, options } => {
                design.encode(&mut out);
                options.encode(&mut out);
                (REQ_COMPILE, out)
            }
            Request::Eco {
                design,
                options,
                edits,
            } => {
                design.encode(&mut out);
                options.encode(&mut out);
                out.extend_from_slice(&(edits.len() as u64).to_le_bytes());
                for e in edits {
                    push_string(&mut out, e);
                }
                (REQ_ECO, out)
            }
            Request::Stats => (REQ_STATS, out),
            Request::Shutdown => (REQ_SHUTDOWN, out),
        }
    }

    /// Decodes a frame into a request.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for unknown kinds, out-of-domain fields
    /// or trailing bytes.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        let req = match kind {
            REQ_COMPILE => Request::Compile {
                design: DesignSpec::decode(&mut c)?,
                options: RequestOptions::decode(&mut c)?,
            },
            REQ_ECO => {
                let design = DesignSpec::decode(&mut c)?;
                let options = RequestOptions::decode(&mut c)?;
                // Each edit is at least a length prefix (8 bytes).
                let n = c.count(8, "edit count")?;
                let mut edits = Vec::with_capacity(n);
                for _ in 0..n {
                    edits.push(c.string("edit spec")?);
                }
                Request::Eco {
                    design,
                    options,
                    edits,
                }
            }
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            other => {
                return Err(ServeError::Request {
                    message: format!("unknown request kind {other:#04x}"),
                });
            }
        };
        c.expect_end("request")?;
        Ok(req)
    }
}

/// The deterministic digest triple every compile-shaped response
/// carries — the exact numbers behind `plc`'s two digest lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestTriple {
    /// LUT-mapped synchronous netlist fingerprint.
    pub mapped_fp: u64,
    /// Plain phased-logic netlist fingerprint.
    pub phased_fp: u64,
    /// FNV digest of all primary-output bits.
    pub outputs_digest: u64,
}

impl DigestTriple {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.mapped_fp.to_le_bytes());
        out.extend_from_slice(&self.phased_fp.to_le_bytes());
        out.extend_from_slice(&self.outputs_digest.to_le_bytes());
    }

    fn decode(c: &mut Cursor<'_>) -> Result<Self, ServeError> {
        Ok(DigestTriple {
            mapped_fp: c.u64("mapped fingerprint")?,
            phased_fp: c.u64("phased fingerprint")?,
            outputs_digest: c.u64("outputs digest")?,
        })
    }
}

/// Per-edit result inside [`Response::EcoOk`].
#[derive(Debug, Clone, PartialEq)]
pub struct EcoEditResult {
    /// The edit spec as sent.
    pub spec: String,
    /// Dirty nodes this incremental recompile touched.
    pub dirty_nodes: u64,
    /// Post-edit digests.
    pub digest: DigestTriple,
}

/// Cache counters inside [`Response::StatsOk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Live cache entries.
    pub entries: u64,
    /// Configured capacity.
    pub capacity: u64,
    /// Requests answered from a warm entry.
    pub hits: u64,
    /// Requests that compiled from scratch.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// ECO edits applied against warm entries.
    pub eco_edits: u64,
    /// Malformed frames/requests rejected (typed, without dying).
    pub malformed: u64,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A compile request succeeded.
    CompileOk {
        /// Design label.
        name: String,
        /// Whether a warm cache entry served the compile.
        cache_hit: bool,
        /// LUTs after technology mapping.
        luts: u64,
        /// Phased-logic gates.
        gates: u64,
        /// Early-evaluation pairs.
        pairs: u64,
        /// Deterministic digests.
        digest: DigestTriple,
    },
    /// An ECO request succeeded.
    EcoOk {
        /// Design label.
        name: String,
        /// Whether the edits ran against a warm cache entry.
        cache_hit: bool,
        /// Digests of the pre-edit compile.
        initial: DigestTriple,
        /// Per-edit incremental-recompile results, in order.
        edits: Vec<EcoEditResult>,
    },
    /// Cache/error counters.
    StatsOk(ServerStats),
    /// Shutdown acknowledged; the daemon exits after this frame.
    ShutdownOk,
    /// The request failed; the code is one of the `ERR_*` constants.
    Error {
        /// Error class.
        code: u16,
        /// Human-readable detail (for `ERR_OPTIONS`, the exact
        /// `FlowOptions::validate` message).
        message: String,
    },
}

impl Response {
    /// Frame kind + payload.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        match self {
            Response::CompileOk {
                name,
                cache_hit,
                luts,
                gates,
                pairs,
                digest,
            } => {
                push_string(&mut out, name);
                out.push(u8::from(*cache_hit));
                out.extend_from_slice(&luts.to_le_bytes());
                out.extend_from_slice(&gates.to_le_bytes());
                out.extend_from_slice(&pairs.to_le_bytes());
                digest.encode(&mut out);
                (RESP_COMPILE, out)
            }
            Response::EcoOk {
                name,
                cache_hit,
                initial,
                edits,
            } => {
                push_string(&mut out, name);
                out.push(u8::from(*cache_hit));
                initial.encode(&mut out);
                out.extend_from_slice(&(edits.len() as u64).to_le_bytes());
                for e in edits {
                    push_string(&mut out, &e.spec);
                    out.extend_from_slice(&e.dirty_nodes.to_le_bytes());
                    e.digest.encode(&mut out);
                }
                (RESP_ECO, out)
            }
            Response::StatsOk(s) => {
                for v in [
                    s.entries,
                    s.capacity,
                    s.hits,
                    s.misses,
                    s.evictions,
                    s.eco_edits,
                    s.malformed,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                (RESP_STATS, out)
            }
            Response::ShutdownOk => (RESP_SHUTDOWN, out),
            Response::Error { code, message } => {
                out.extend_from_slice(&code.to_le_bytes());
                push_string(&mut out, message);
                (RESP_ERROR, out)
            }
        }
    }

    /// Decodes a frame into a response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for unknown kinds, out-of-domain fields
    /// or trailing bytes.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        let resp = match kind {
            RESP_COMPILE => Response::CompileOk {
                name: c.string("name")?,
                cache_hit: decode_bool(&mut c, "cache flag")?,
                luts: c.u64("luts")?,
                gates: c.u64("gates")?,
                pairs: c.u64("pairs")?,
                digest: DigestTriple::decode(&mut c)?,
            },
            RESP_ECO => {
                let name = c.string("name")?;
                let cache_hit = decode_bool(&mut c, "cache flag")?;
                let initial = DigestTriple::decode(&mut c)?;
                // Spec length prefix (8) + dirty (8) + triple (24).
                let n = c.count(40, "edit result count")?;
                let mut edits = Vec::with_capacity(n);
                for _ in 0..n {
                    edits.push(EcoEditResult {
                        spec: c.string("edit spec")?,
                        dirty_nodes: c.u64("dirty nodes")?,
                        digest: DigestTriple::decode(&mut c)?,
                    });
                }
                Response::EcoOk {
                    name,
                    cache_hit,
                    initial,
                    edits,
                }
            }
            RESP_STATS => Response::StatsOk(ServerStats {
                entries: c.u64("entries")?,
                capacity: c.u64("capacity")?,
                hits: c.u64("hits")?,
                misses: c.u64("misses")?,
                evictions: c.u64("evictions")?,
                eco_edits: c.u64("eco edits")?,
                malformed: c.u64("malformed")?,
            }),
            RESP_SHUTDOWN => Response::ShutdownOk,
            RESP_ERROR => Response::Error {
                code: c.u16("error code")?,
                message: c.string("error message")?,
            },
            other => {
                return Err(ServeError::Request {
                    message: format!("unknown response kind {other:#04x}"),
                });
            }
        };
        c.expect_end("response")?;
        Ok(resp)
    }
}

fn decode_bool(c: &mut Cursor<'_>, what: &'static str) -> Result<bool, ServeError> {
    match c.u8(what)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(ServeError::Request {
            message: format!("{what}: {other} is not a boolean"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_options() -> RequestOptions {
        RequestOptions {
            vectors: 60,
            seed: 7,
            jobs: 2,
            ee: true,
            verify: true,
            lanes: Some(64),
            ..RequestOptions::default()
        }
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Compile {
                design: DesignSpec::Spec("b06".into()),
                options: sample_options(),
            },
            Request::Eco {
                design: DesignSpec::BlifText {
                    name: "t".into(),
                    text: ".model t\n.end\n".into(),
                },
                options: RequestOptions::default(),
                edits: vec!["table:n8:0x6".into(), "remove:n9".into()],
            },
            Request::Stats,
            Request::Shutdown,
        ] {
            let (kind, payload) = req.encode();
            assert_eq!(Request::decode(kind, &payload).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let triple = DigestTriple {
            mapped_fp: 1,
            phased_fp: 2,
            outputs_digest: 3,
        };
        for resp in [
            Response::CompileOk {
                name: "b06".into(),
                cache_hit: true,
                luts: 10,
                gates: 20,
                pairs: 3,
                digest: triple,
            },
            Response::EcoOk {
                name: "b06".into(),
                cache_hit: false,
                initial: triple,
                edits: vec![EcoEditResult {
                    spec: "table:n8:0x6".into(),
                    dirty_nodes: 4,
                    digest: triple,
                }],
            },
            Response::StatsOk(ServerStats {
                entries: 1,
                capacity: 8,
                hits: 2,
                misses: 3,
                evictions: 0,
                eco_edits: 5,
                malformed: 1,
            }),
            Response::ShutdownOk,
            Response::Error {
                code: ERR_OPTIONS,
                message: "--window must be at least 1".into(),
            },
        ] {
            let (kind, payload) = resp.encode();
            assert_eq!(Response::decode(kind, &payload).unwrap(), resp);
        }
    }

    #[test]
    fn unknown_flag_bits_are_rejected() {
        let req = Request::Compile {
            design: DesignSpec::Spec("b01".into()),
            options: RequestOptions::default(),
        };
        let (kind, mut payload) = req.encode();
        // The flags byte sits after design (tag + string) and five u64s.
        let flags_at = 1 + 8 + 3 + 5 * 8;
        assert_eq!(payload[flags_at] & 0b1111, payload[flags_at]);
        payload[flags_at] |= 0b1_0000;
        assert!(matches!(
            Request::decode(kind, &payload),
            Err(ServeError::Request { .. })
        ));
    }

    #[test]
    fn options_fingerprint_separates_fields() {
        let a = RequestOptions::default();
        let mut b = a.clone();
        b.ee = true;
        let mut c = a.clone();
        c.seed ^= 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), RequestOptions::default().fingerprint());
    }

    #[test]
    fn to_flow_options_mirrors_plc_wiring() {
        let o = sample_options().to_flow_options();
        assert_eq!(o.vectors, 60);
        assert_eq!(o.seed, 7);
        assert_eq!(o.jobs, 2);
        assert!(o.ee_enabled);
        assert!(o.verify);
        assert!(o.lint.enabled);
        assert_eq!(o.lanes, Some(64));
        o.validate().unwrap();
    }
}
