//! Hand-rolled framing for the `pld` protocol, in the same spirit as
//! `pl_sim::checkpoint::wire`: explicit little-endian fields, a CRC32
//! over every payload, and typed rejection of every malformed-frame
//! class — never a panic, never an unbounded allocation, never a hang
//! on a short frame (the transport sets read timeouts).
//!
//! # Frame layout
//!
//! ```text
//! magic   4 bytes   b"PLD1"
//! kind    1 byte    request/response discriminator (see proto)
//! length  4 bytes   payload length, little-endian, <= MAX_FRAME
//! payload length bytes
//! crc32   4 bytes   IEEE CRC32 of the payload
//! ```
//!
//! Payloads are decoded through [`Cursor`], which bounds every length
//! and count against the bytes actually present before allocating —
//! the lesson of the checkpoint decoder's 32-bit narrowing bug applies
//! here from day one.

use crate::error::ServeError;
use std::io::{Read, Write};

/// Frame magic: four bytes so a stray HTTP request or checkpoint file
/// pointed at the daemon's port fails immediately and legibly.
pub const MAGIC: [u8; 4] = *b"PLD1";

/// Upper bound on one frame's payload. Generous for BLIF text (the
/// largest ITC'99 design is well under 1 MiB) while keeping a hostile
/// length field from requesting a multi-gigabyte allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// IEEE CRC32 (reflected, polynomial `0xEDB8_8320`) — the checkpoint
/// wire format's checksum, reimplemented because that helper is crate
/// private. Pinned by a check-value test below.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames and writes one message.
///
/// # Errors
///
/// [`ServeError::Io`] if the write fails.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), ServeError> {
    let io_err = |e: std::io::Error| ServeError::Io {
        context: "write frame",
        message: e.to_string(),
    };
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    let mut out = Vec::with_capacity(4 + 1 + 4 + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&out).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Reads one frame. `Ok(None)` is a clean end of stream (EOF exactly at
/// a frame boundary); every other irregularity is a typed error:
///
/// * EOF inside a frame → [`ServeError::Frame`] (`"truncated frame"`),
/// * wrong magic → [`ServeError::Frame`] (`"magic"`),
/// * length above [`MAX_FRAME`] → [`ServeError::Frame`]
///   (`"oversized length"`), **before** any allocation,
/// * payload CRC mismatch → [`ServeError::Frame`] (`"checksum"`),
/// * socket errors (including read timeouts, so a stalled sender can
///   never hang the connection forever) → [`ServeError::Io`].
///
/// # Errors
///
/// As listed above.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, ServeError> {
    let mut magic = [0u8; 4];
    match read_exact_or_eof(r, &mut magic)? {
        Filled::Eof => return Ok(None),
        Filled::Partial(got) => {
            return Err(ServeError::Frame {
                context: "truncated frame",
                message: format!("stream ended {got} byte(s) into the 4-byte magic"),
            });
        }
        Filled::Full => {}
    }
    if magic != MAGIC {
        return Err(ServeError::Frame {
            context: "magic",
            message: format!("found {magic:02x?}, expected {MAGIC:02x?}"),
        });
    }
    let mut head = [0u8; 5];
    read_exact(r, &mut head, "frame header")?;
    let kind = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(ServeError::Frame {
            context: "oversized length",
            message: format!("payload length {len} exceeds the {MAX_FRAME}-byte frame cap"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload, "frame payload")?;
    let mut crc = [0u8; 4];
    read_exact(r, &mut crc, "frame checksum")?;
    let stored = u32::from_le_bytes(crc);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(ServeError::Frame {
            context: "checksum",
            message: format!("stored {stored:#010x}, computed {computed:#010x}"),
        });
    }
    Ok(Some((kind, payload)))
}

enum Filled {
    Full,
    Eof,
    Partial(usize),
}

/// `read_exact` that distinguishes "EOF before any byte" (a clean
/// close) from "EOF mid-buffer" (a truncated frame).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<Filled, ServeError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Ok(if got == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial(got)
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(ServeError::Io {
                    context: "read frame",
                    message: e.to_string(),
                });
            }
        }
    }
    Ok(Filled::Full)
}

fn read_exact(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), ServeError> {
    match read_exact_or_eof(r, buf)? {
        Filled::Full => Ok(()),
        Filled::Eof | Filled::Partial(_) => Err(ServeError::Frame {
            context: "truncated frame",
            message: format!("stream ended inside the {what}"),
        }),
    }
}

/// Bounds-checked payload decoder: every read is validated against the
/// remaining bytes, lengths are bounded *in u64 space* before narrowing
/// to `usize`, and decoding must consume the payload exactly
/// ([`Cursor::expect_end`]).
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts decoding `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ServeError> {
        if n > self.remaining() {
            return Err(ServeError::Request {
                message: format!("{what}: needs {n} byte(s), {} remaining", self.remaining()),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] if the payload is exhausted.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, ServeError> {
        Ok(self.take(1, what)?[0])
    }

    /// A little-endian u16.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] if the payload is exhausted.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    /// A little-endian u64.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] if the payload is exhausted.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// A u64 that must fit `usize` and be at most `remaining / min_item_bytes`
    /// — the pattern for element counts about to drive allocation.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] on exhaustion or an out-of-bounds count.
    pub fn count(
        &mut self,
        min_item_bytes: usize,
        what: &'static str,
    ) -> Result<usize, ServeError> {
        let raw = self.u64(what)?;
        let limit = (self.remaining() / min_item_bytes.max(1)) as u64;
        if raw > limit {
            return Err(ServeError::Request {
                message: format!("{what}: count {raw} exceeds the in-bounds limit {limit}"),
            });
        }
        usize::try_from(raw).map_err(|_| ServeError::Request {
            message: format!("{what}: count {raw} does not fit this target"),
        })
    }

    /// A length-prefixed UTF-8 string (u64 length, bounded by the
    /// remaining bytes before any slice or allocation).
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] on exhaustion, an oversized length, or
    /// invalid UTF-8.
    pub fn string(&mut self, what: &'static str) -> Result<String, ServeError> {
        let len = self.u64(what)?;
        if len > self.remaining() as u64 {
            return Err(ServeError::Request {
                message: format!(
                    "{what}: string length {len} exceeds the {} remaining byte(s)",
                    self.remaining()
                ),
            });
        }
        let bytes = self.take(len as usize, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ServeError::Request {
            message: format!("{what}: invalid UTF-8"),
        })
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] if bytes trail the decoded value.
    pub fn expect_end(&self, what: &'static str) -> Result<(), ServeError> {
        if self.remaining() != 0 {
            return Err(ServeError::Request {
                message: format!("{what}: {} trailing byte(s)", self.remaining()),
            });
        }
        Ok(())
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn push_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").unwrap();
        let mut r = &buf[..];
        let (kind, payload) = read_frame(&mut r).unwrap().expect("one frame");
        assert_eq!(kind, 7);
        assert_eq!(payload, b"hello");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after");
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"x").unwrap();
        buf[0] ^= 0xFF;
        match read_frame(&mut &buf[..]) {
            Err(ServeError::Frame { context, .. }) => assert_eq!(context, "magic"),
            other => panic!("expected Frame error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_typed_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(1);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut &buf[..]) {
            Err(ServeError::Frame { context, .. }) => assert_eq!(context, "oversized length"),
            other => panic!("expected Frame error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_everywhere_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"payload").unwrap();
        for cut in 1..buf.len() {
            match read_frame(&mut &buf[..cut]) {
                Err(ServeError::Frame { .. }) => {}
                other => panic!("cut at {cut}: expected Frame error, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_checksum_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"payload").unwrap();
        let n = buf.len();
        buf[n - 1] ^= 0x01;
        match read_frame(&mut &buf[..]) {
            Err(ServeError::Frame { context, .. }) => assert_eq!(context, "checksum"),
            other => panic!("expected Frame error, got {other:?}"),
        }
    }

    #[test]
    fn cursor_bounds_counts_and_strings() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut c = Cursor::new(&payload);
        assert!(c.count(1, "n").is_err(), "absurd count rejected");
        let mut c = Cursor::new(&payload);
        assert!(c.string("s").is_err(), "absurd string length rejected");
    }
}
