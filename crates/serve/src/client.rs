//! The blocking client side of the `pld` protocol: connect, frame a
//! request, read one response frame back.

use crate::error::ServeError;
use crate::proto::{Request, Response};
use crate::wire::{read_frame, write_frame};
use std::net::TcpStream;
use std::time::Duration;

/// One connection to a `pld` daemon. A connection serves any number of
/// sequential requests (the protocol is strict request→response).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connect fails.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServeError::Io {
            context: "connect",
            message: format!("{addr}: {e}"),
        })?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Bounds how long a single response read may block.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket rejects the timeout.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ServeError::Io {
                context: "set timeout",
                message: e.to_string(),
            })
    }

    /// Sends one request and reads its response. A server-side error
    /// frame is returned as `Ok(Response::Error { .. })` so callers can
    /// inspect the code; use [`Response`] matching or
    /// [`Client::expect_ok`] to turn it into a typed failure.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`]/[`ServeError::Frame`]/[`ServeError::Request`]
    /// for transport or decoding failures.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        let (kind, payload) = request.encode();
        write_frame(&mut self.stream, kind, &payload)?;
        match read_frame(&mut self.stream)? {
            Some((kind, payload)) => Response::decode(kind, &payload),
            None => Err(ServeError::Frame {
                context: "truncated frame",
                message: "server closed the connection before responding".into(),
            }),
        }
    }

    /// [`Client::request`], with a server error frame mapped to
    /// [`ServeError::Remote`].
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ServeError::Remote`].
    pub fn expect_ok(&mut self, request: &Request) -> Result<Response, ServeError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            ok => Ok(ok),
        }
    }
}
