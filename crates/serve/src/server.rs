//! The `pld` daemon: TCP accept loop, per-connection handlers, and the
//! request dispatch that ties the protocol to the compile pipeline and
//! the LRU cache.
//!
//! # Concurrency model
//!
//! One OS thread per connection (scoped, so `serve` owns every
//! handler), a mutex around the [`NetlistCache`] held only for
//! constant-time lookup/insert, and compiles/sweeps running outside
//! any lock. A cache hit hands the session an `Arc` to the shared
//! compiled artifact; the session then runs its **own** simulator over
//! it (`Pipeline::simulate` on a reconstructed early-eval artifact),
//! so concurrent sessions never contend and the determinism contract
//! is exercised on every hit — the fresh sweep must reproduce the
//! cached digest bit-for-bit or the server answers with a typed error
//! instead of a wrong answer.
//!
//! # Failure containment
//!
//! Malformed *frames* (bad magic, truncation, checksum, oversized
//! length) get a best-effort `ERR_FRAME` response and close only that
//! connection. Malformed *requests* on a well-formed frame get
//! `ERR_REQUEST` and keep the connection. Option combinations rejected
//! by `FlowOptions::validate` get `ERR_OPTIONS` with the exact CLI
//! message. Pipeline failures get `ERR_FLOW`. Nothing panics the
//! daemon; a stalled sender runs into the per-connection read timeout.

use crate::cache::{CacheKey, CompiledState, NetlistCache};
use crate::digest::outputs_digest;
use crate::error::ServeError;
use crate::proto::{
    DesignSpec, DigestTriple, EcoEditResult, Request, RequestOptions, Response, ServerStats,
    ERR_FLOW, ERR_FRAME, ERR_OPTIONS, ERR_REQUEST,
};
use crate::wire::{read_frame, write_frame};
use pl_flow::{CircuitSource, EarlyEvaled, EcoEdit, FlowError, Pipeline};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Daemon tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// LRU capacity of the compiled-netlist cache.
    pub cache_entries: usize,
    /// Per-connection read timeout — bounds how long a truncated frame
    /// can hold a handler thread. `None` disables the bound.
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_entries: 8,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    eco_edits: AtomicU64,
    malformed: AtomicU64,
}

struct ServerState {
    cache: Mutex<NetlistCache>,
    counters: Counters,
    shutdown: AtomicBool,
    read_timeout: Option<Duration>,
}

/// A bound `pld` daemon. [`PldServer::serve`] blocks until a client
/// sends `Shutdown`.
pub struct PldServer {
    listener: TcpListener,
    state: ServerState,
}

impl PldServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the bind fails.
    pub fn bind(addr: &str, config: &ServerConfig) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io {
            context: "bind",
            message: format!("{addr}: {e}"),
        })?;
        Ok(PldServer {
            listener,
            state: ServerState {
                cache: Mutex::new(NetlistCache::new(config.cache_entries)),
                counters: Counters::default(),
                shutdown: AtomicBool::new(false),
                read_timeout: config.read_timeout,
            },
        })
    }

    /// The bound address (useful after an ephemeral-port bind).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket refuses to report it.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(|e| ServeError::Io {
            context: "local addr",
            message: e.to_string(),
        })
    }

    /// Accepts and serves connections until a `Shutdown` request
    /// arrives; every handler thread is joined before returning.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the accept loop itself fails (individual
    /// connection failures are contained per-handler).
    pub fn serve(&self) -> Result<(), ServeError> {
        let wake = self.local_addr()?;
        std::thread::scope(|scope| {
            loop {
                let (stream, _) = match self.listener.accept() {
                    Ok(accepted) => accepted,
                    Err(e) => {
                        if self.state.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        return Err(ServeError::Io {
                            context: "accept",
                            message: e.to_string(),
                        });
                    }
                };
                if self.state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let state = &self.state;
                scope.spawn(move || handle_connection(stream, state, wake));
            }
            Ok(())
        })
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState, wake: SocketAddr) {
    let _ = stream.set_read_timeout(state.read_timeout);
    let _ = stream.set_nodelay(true);
    loop {
        let (kind, payload) = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean EOF: the client closed between frames.
            Ok(None) => break,
            // A socket-level failure (reset, timeout): the peer is gone
            // or stalled — nothing to answer, and not a malformed frame.
            Err(ServeError::Io { .. }) => break,
            Err(e) => {
                // A malformed byte stream: answer typed (best effort —
                // the peer may already be gone) and drop the
                // connection; resynchronizing a broken stream is not
                // worth guessing at.
                state.counters.malformed.fetch_add(1, Ordering::Relaxed);
                respond(&mut stream, &error_response(&e));
                break;
            }
        };
        let request = match Request::decode(kind, &payload) {
            Ok(r) => r,
            Err(e) => {
                // The framing was intact, so the connection survives a
                // semantically malformed request.
                state.counters.malformed.fetch_add(1, Ordering::Relaxed);
                respond(&mut stream, &error_response(&e));
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = match dispatch(request, state) {
            Ok(r) => r,
            Err(e) => error_response(&e),
        };
        if !respond(&mut stream, &response) {
            break;
        }
        if is_shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so `serve` observes the flag.
            let _ = TcpStream::connect(wake);
            break;
        }
    }
}

fn respond(stream: &mut TcpStream, response: &Response) -> bool {
    let (kind, payload) = response.encode();
    write_frame(stream, kind, &payload).is_ok()
}

fn error_response(e: &ServeError) -> Response {
    let (code, message) = match e {
        ServeError::Frame { .. } => (ERR_FRAME, e.to_string()),
        ServeError::Request { .. } => (ERR_REQUEST, e.to_string()),
        ServeError::Flow(FlowError::Options { message }) => (ERR_OPTIONS, message.clone()),
        ServeError::Flow(flow) => (ERR_FLOW, flow.to_string()),
        // Io/Remote never originate from dispatch; map them
        // conservatively to the frame class.
        ServeError::Io { .. } | ServeError::Remote { .. } => (ERR_FRAME, e.to_string()),
    };
    Response::Error { code, message }
}

fn dispatch(request: Request, state: &ServerState) -> Result<Response, ServeError> {
    match request {
        Request::Compile { design, options } => compile(design, options, state),
        Request::Eco {
            design,
            options,
            edits,
        } => eco(design, options, &edits, state),
        Request::Stats => Ok(Response::StatsOk(stats(state))),
        Request::Shutdown => Ok(Response::ShutdownOk),
    }
}

fn stats(state: &ServerState) -> ServerStats {
    let cache = state.cache.lock().expect("cache mutex");
    ServerStats {
        entries: cache.len() as u64,
        capacity: cache.capacity() as u64,
        hits: state.counters.hits.load(Ordering::Relaxed),
        misses: state.counters.misses.load(Ordering::Relaxed),
        evictions: state.counters.evictions.load(Ordering::Relaxed),
        eco_edits: state.counters.eco_edits.load(Ordering::Relaxed),
        malformed: state.counters.malformed.load(Ordering::Relaxed),
    }
}

fn resolve(design: &DesignSpec) -> CircuitSource {
    match design {
        DesignSpec::Spec(s) => CircuitSource::from_spec(s),
        DesignSpec::BlifText { name, text } => CircuitSource::BlifText {
            name: name.clone(),
            text: text.clone(),
        },
    }
}

/// Validates, then serves from cache or compiles. Shared by the
/// compile and eco paths.
fn warm_entry(
    design: &DesignSpec,
    options: &RequestOptions,
    state: &ServerState,
) -> Result<(Arc<CompiledState>, bool), ServeError> {
    let flow_opts = options.to_flow_options();
    flow_opts.validate().map_err(ServeError::Flow)?;
    let key: CacheKey = (design.digest(), options.fingerprint());
    if let Some(warm) = state.cache.lock().expect("cache mutex").lookup(key) {
        state.counters.hits.fetch_add(1, Ordering::Relaxed);
        return Ok((warm, true));
    }
    // Miss: compile outside the cache lock, so a slow compile never
    // blocks hits on other keys. Two racing misses on the same key both
    // compile; determinism makes the duplicate harmless and last-insert
    // wins.
    state.counters.misses.fetch_add(1, Ordering::Relaxed);
    let source = resolve(design);
    let session = Pipeline::new(flow_opts).eco_session(&source)?;
    let art = session.artifacts();
    let compiled = Arc::new(CompiledState {
        mapped_fp: art.mapped.fingerprint(),
        phased_fp: art.plain.fingerprint(),
        outputs_digest: outputs_digest(&art.outputs),
        luts: art.report.techmap.luts_after as u64,
        gates: art.report.phased.logic_gates as u64,
        pairs: art.pairs.len() as u64,
        session,
    });
    let evicted = state
        .cache
        .lock()
        .expect("cache mutex")
        .insert(key, Arc::clone(&compiled));
    state
        .counters
        .evictions
        .fetch_add(evicted, Ordering::Relaxed);
    Ok((compiled, false))
}

fn compile(
    design: DesignSpec,
    options: RequestOptions,
    state: &ServerState,
) -> Result<Response, ServeError> {
    let (warm, cache_hit) = warm_entry(&design, &options, state)?;
    let art = warm.session.artifacts();
    let digest = if cache_hit {
        // Per-session simulator over the shared artifact: reconstruct
        // the early-eval stage output from the warm compile and sweep
        // it fresh under this request's options. The result must be
        // bit-identical to the compile-time sweep — answering with a
        // typed error on divergence is the determinism contract's
        // tripwire (it has never fired; the tests would catch it too).
        let pipeline = Pipeline::new(options.to_flow_options());
        let early = EarlyEvaled {
            name: art.name.clone(),
            plain: art.plain.clone(),
            ee: art.ee.clone(),
            pairs: art.pairs.clone(),
            report: art.report.early_eval.clone(),
        };
        let sim = pipeline.simulate(&early)?;
        if pipeline.opts().verify {
            pipeline.verify(&art.mapped, &sim)?;
        }
        let fresh = outputs_digest(&sim.outputs);
        if fresh != warm.outputs_digest {
            return Err(ServeError::Flow(FlowError::Mismatch {
                context: format!("{} (cached sweep vs per-session sweep)", art.name),
            }));
        }
        fresh
    } else {
        warm.outputs_digest
    };
    Ok(Response::CompileOk {
        name: art.name.clone(),
        cache_hit,
        luts: warm.luts,
        gates: warm.gates,
        pairs: warm.pairs,
        digest: DigestTriple {
            mapped_fp: warm.mapped_fp,
            phased_fp: warm.phased_fp,
            outputs_digest: digest,
        },
    })
}

fn eco(
    design: DesignSpec,
    options: RequestOptions,
    edits: &[String],
    state: &ServerState,
) -> Result<Response, ServeError> {
    // Parse every edit before touching any state, like `plc eco`.
    let mut parsed = Vec::with_capacity(edits.len());
    for spec in edits {
        let edit = EcoEdit::parse(spec).map_err(|e| ServeError::Request {
            message: format!("edit '{spec}': {e}"),
        })?;
        parsed.push((spec.clone(), edit));
    }
    let (warm, cache_hit) = warm_entry(&design, &options, state)?;
    // ECO against the warm entry: clone the pristine warm session (all
    // the compile reuse state — memoized cuts, trigger cache — comes
    // along) and mutate the clone, one incremental recompile per edit,
    // exactly `plc eco`'s loop. The entry itself stays pristine so a
    // later plain compile on this key still answers for the un-edited
    // design.
    let mut session = warm.session.clone();
    let initial = DigestTriple {
        mapped_fp: warm.mapped_fp,
        phased_fp: warm.phased_fp,
        outputs_digest: warm.outputs_digest,
    };
    let mut results = Vec::with_capacity(parsed.len());
    for (spec, edit) in parsed {
        let out = session.apply_eco(std::slice::from_ref(&edit))?;
        state.counters.eco_edits.fetch_add(1, Ordering::Relaxed);
        results.push(EcoEditResult {
            spec,
            dirty_nodes: out.eco.dirty_nodes as u64,
            digest: DigestTriple {
                mapped_fp: out.eco.mapped_fingerprint,
                phased_fp: out.eco.phased_fingerprint,
                outputs_digest: outputs_digest(&session.artifacts().outputs),
            },
        });
    }
    Ok(Response::EcoOk {
        name: session.name().to_string(),
        cache_hit,
        initial,
        edits: results,
    })
}
