//! The daemon's error type, spanning framing, request decoding, option
//! validation and the compile pipeline itself.

use pl_flow::FlowError;

/// Errors from the `pld` protocol and the services behind it.
///
/// The variants mirror the protocol's error codes (see
/// [`crate::proto`]): a [`ServeError::Frame`] means the byte stream
/// itself was malformed (the server answers with code `ERR_FRAME` and
/// closes the connection), while the other server-side variants keep
/// the connection alive — one bad request must not take down the
/// session, let alone the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// The byte stream violated the framing layer: bad magic, an
    /// oversized or truncated frame, a checksum mismatch.
    Frame {
        /// Which framing rule was violated.
        context: &'static str,
        /// Details (found/expected values, byte counts).
        message: String,
    },
    /// A well-framed payload that does not decode to a request or
    /// response: unknown kind byte, out-of-domain field, trailing
    /// bytes, invalid UTF-8.
    Request {
        /// What failed to decode.
        message: String,
    },
    /// A socket-level failure (connect, read, write, timeout).
    Io {
        /// What was being done when the socket failed.
        context: &'static str,
        /// The underlying I/O error.
        message: String,
    },
    /// The compile pipeline rejected the request (including
    /// [`FlowError::Options`] from `FlowOptions::validate`).
    Flow(FlowError),
    /// Client side only: the server answered with a typed error frame.
    Remote {
        /// The protocol error code (see [`crate::proto`]).
        code: u16,
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Frame { context, message } => write!(f, "bad frame ({context}): {message}"),
            ServeError::Request { message } => write!(f, "bad request: {message}"),
            ServeError::Io { context, message } => write!(f, "io ({context}): {message}"),
            ServeError::Flow(e) => write!(f, "flow: {e}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FlowError> for ServeError {
    fn from(e: FlowError) -> Self {
        ServeError::Flow(e)
    }
}
