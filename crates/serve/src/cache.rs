//! The compiled-netlist LRU cache behind the daemon.
//!
//! Keyed by `(source digest, options fingerprint)` — see
//! [`crate::proto::DesignSpec::digest`] and
//! [`crate::proto::RequestOptions::fingerprint`] — each entry holds a
//! pristine warm [`EcoSession`] (the full compile: memoized cuts,
//! trigger cache, artifacts) behind an `Arc`, so any number of
//! concurrent sessions can read the shared compiled artifact while the
//! cache itself is only locked for the constant-time lookup/insert.
//!
//! Eviction is strict LRU on a logical tick that increments on every
//! touch, with the key as a total-order tie-break — fully
//! deterministic for a sequential request trace, which is what the
//! equivalence tests pin.

use pl_flow::EcoSession;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: design identity × full option fingerprint.
pub type CacheKey = (u64, u64);

/// One warm compile, shared read-only across sessions.
#[derive(Debug)]
pub struct CompiledState {
    /// The pristine warm session (never mutated in place — ECO requests
    /// clone it, so a cached entry always answers a plain compile with
    /// the un-edited design).
    pub session: EcoSession,
    /// LUT-mapped synchronous netlist fingerprint.
    pub mapped_fp: u64,
    /// Plain phased-logic netlist fingerprint.
    pub phased_fp: u64,
    /// Outputs digest of the compile-time sweep (same options as the
    /// key, so any later sweep under this key must reproduce it).
    pub outputs_digest: u64,
    /// LUTs after technology mapping.
    pub luts: u64,
    /// Phased-logic gates.
    pub gates: u64,
    /// Early-evaluation pairs.
    pub pairs: u64,
}

struct Slot {
    last_used: u64,
    state: Arc<CompiledState>,
}

/// Strict-LRU map from [`CacheKey`] to [`CompiledState`].
pub struct NetlistCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Slot>,
}

impl NetlistCache {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        NetlistCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a warm entry, marking it most-recently-used.
    pub fn lookup(&mut self, key: CacheKey) -> Option<Arc<CompiledState>> {
        self.tick += 1;
        let tick = self.tick;
        let slot = self.map.get_mut(&key)?;
        slot.last_used = tick;
        Some(Arc::clone(&slot.state))
    }

    /// Inserts (or replaces) an entry, evicting least-recently-used
    /// entries down to capacity. Returns how many entries were evicted.
    pub fn insert(&mut self, key: CacheKey, state: Arc<CompiledState>) -> u64 {
        self.tick += 1;
        self.map.insert(
            key,
            Slot {
                last_used: self.tick,
                state,
            },
        );
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            // Min (last_used, key): ticks are unique, so the key
            // tie-break only matters as belt-and-braces determinism.
            let victim = self
                .map
                .iter()
                .map(|(k, s)| (s.last_used, *k))
                .min()
                .map(|(_, k)| k)
                .expect("non-empty above capacity");
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_flow::{CircuitSource, FlowOptions, Pipeline};

    fn state_for(name: &str) -> Arc<CompiledState> {
        let pipeline = Pipeline::new(FlowOptions {
            vectors: 2,
            verify: false,
            ..FlowOptions::default()
        });
        let session = pipeline
            .eco_session(&CircuitSource::catalog(name).unwrap())
            .unwrap();
        Arc::new(CompiledState {
            session,
            mapped_fp: 0,
            phased_fp: 0,
            outputs_digest: 0,
            luts: 0,
            gates: 0,
            pairs: 0,
        })
    }

    #[test]
    fn lru_evicts_least_recently_used_deterministically() {
        let mut cache = NetlistCache::new(2);
        let s = state_for("b01");
        assert_eq!(cache.insert((1, 0), Arc::clone(&s)), 0);
        assert_eq!(cache.insert((2, 0), Arc::clone(&s)), 0);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.lookup((1, 0)).is_some());
        assert_eq!(cache.insert((3, 0), Arc::clone(&s)), 1);
        assert!(cache.lookup((2, 0)).is_none(), "LRU victim evicted");
        assert!(cache.lookup((1, 0)).is_some());
        assert!(cache.lookup((3, 0)).is_some());
        assert_eq!(cache.len(), 2);
    }
}
