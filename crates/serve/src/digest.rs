//! The deterministic digest lines shared by `plc` and the daemon.
//!
//! One definition, used by `plc eco`'s output, the server's responses
//! and the client's rendering — so "diff the digest lines" is a
//! meaningful equivalence check rather than two formats drifting apart.

use pl_sim::Fnv64;

/// FNV digest over every primary-output bit of a sweep, in vector
/// order — the cross-run comparison point (`outputs digest` line).
pub fn outputs_digest(outputs: &[Vec<bool>]) -> u64 {
    let mut digest = Fnv64::new();
    for word in outputs {
        for &b in word {
            digest.mix(u64::from(b));
        }
    }
    digest.finish()
}

/// Renders the two digest lines exactly as `plc eco` prints them (two
/// leading spaces, `{:#018x}` hex, trailing newline on each line).
pub fn render_digest_block(mapped_fp: u64, phased_fp: u64, outputs_digest: u64) -> String {
    format!(
        "  fingerprints: mapped {mapped_fp:#018x}, phased {phased_fp:#018x}\n  outputs digest: {outputs_digest:#018x}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let a = outputs_digest(&[vec![true, false]]);
        let b = outputs_digest(&[vec![false, true]]);
        assert_ne!(a, b);
    }

    #[test]
    fn render_matches_plc_format() {
        let s = render_digest_block(1, 2, 3);
        assert_eq!(
            s,
            "  fingerprints: mapped 0x0000000000000001, phased 0x0000000000000002\n  outputs digest: 0x0000000000000003\n"
        );
    }
}
