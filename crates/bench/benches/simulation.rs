//! Criterion bench: discrete-event simulator throughput with and without
//! early evaluation (the cost of regenerating one Table 3 cell).

use criterion::{criterion_group, criterion_main, Criterion};
use pl_core::ee::EeOptions;
use pl_core::PlNetlist;
use pl_sim::{measure_latency, DelayModel};
use pl_techmap::{map_to_lut4, MapOptions};

fn prepared(id: &str) -> (PlNetlist, PlNetlist) {
    let bench = pl_itc99::by_id(id).expect("benchmark exists");
    let gates = (bench.build)().elaborate().expect("elaborates");
    let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("maps");
    let plain = PlNetlist::from_sync(&mapped).expect("PL maps");
    let ee = PlNetlist::from_sync(&mapped)
        .expect("PL maps")
        .with_early_evaluation(&EeOptions::default())
        .into_netlist();
    (plain, ee)
}

fn bench_simulation(c: &mut Criterion) {
    for id in ["b01", "b04", "b09"] {
        let (plain, ee) = prepared(id);
        let delays = DelayModel::default();
        c.bench_function(&format!("simulate_{id}_plain_20vec"), |b| {
            b.iter(|| {
                let (out, stats) =
                    measure_latency(&plain, &delays, 20, 7).expect("simulates");
                std::hint::black_box((out.len(), stats.mean()))
            })
        });
        c.bench_function(&format!("simulate_{id}_ee_20vec"), |b| {
            b.iter(|| {
                let (out, stats) = measure_latency(&ee, &delays, 20, 7).expect("simulates");
                std::hint::black_box((out.len(), stats.mean()))
            })
        });
    }
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
