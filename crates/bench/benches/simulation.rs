//! Criterion bench: discrete-event simulator throughput with and without
//! early evaluation (the cost of regenerating one Table 3 cell), plus the
//! integer-tick engine against the retained pre-refactor baseline
//! (`pl_sim::reference`) on streamed workloads — the speedup recorded in
//! `BENCH_sim.json` by the `bench_report` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use pl_sim::{measure_latency, DelayModel, PlSimulator, ReferenceSimulator};

fn bench_simulation(c: &mut Criterion) {
    for id in ["b01", "b04", "b09"] {
        let (plain, ee) = pl_bench::prepared_netlists(id);
        let delays = DelayModel::default();
        c.bench_function(&format!("simulate_{id}_plain_20vec"), |b| {
            b.iter(|| {
                let (out, stats) = measure_latency(&plain, &delays, 20, 7).expect("simulates");
                std::hint::black_box((out.len(), stats.mean()))
            })
        });
        c.bench_function(&format!("simulate_{id}_ee_20vec"), |b| {
            b.iter(|| {
                let (out, stats) = measure_latency(&ee, &delays, 20, 7).expect("simulates");
                std::hint::black_box((out.len(), stats.mean()))
            })
        });
    }
}

/// Engine-vs-baseline: the ≥2× claim of the integer-tick rewrite, on the
/// same streamed workload `bench_report` uses (scaled down for Criterion).
fn bench_engine_vs_reference(c: &mut Criterion) {
    for id in ["b04", "b14"] {
        let (_, ee) = pl_bench::prepared_netlists(id);
        let vecs = pl_bench::lcg_vectors(ee.input_gates().len(), 40, 0x5EED_0001);
        let delays = DelayModel::default();
        c.bench_function(&format!("stream_{id}_reference_40vec"), |b| {
            b.iter(|| {
                let mut sim = ReferenceSimulator::new(&ee, delays.clone()).expect("live");
                let out = sim.run_stream(&vecs).expect("simulates");
                std::hint::black_box(out.outputs.len())
            })
        });
        c.bench_function(&format!("stream_{id}_engine_40vec"), |b| {
            b.iter(|| {
                let mut sim = PlSimulator::new(&ee, delays.clone()).expect("live");
                let out = sim.run_stream(&vecs).expect("simulates");
                std::hint::black_box(out.outputs.len())
            })
        });
    }
}

criterion_group!(benches, bench_simulation, bench_engine_vs_reference);
criterion_main!(benches);
