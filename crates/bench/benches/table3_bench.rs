//! Criterion bench: full Table 3 rows (RTL → LUT4 → PL → EE → simulate)
//! for representative small/medium benchmarks. The `table3` binary runs
//! the whole suite with the paper's 100 vectors; here fewer vectors keep
//! Criterion's sample counts practical.

use criterion::{criterion_group, criterion_main, Criterion};
use pl_bench::{run_flow, FlowOptions};

fn bench_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_row");
    group.sample_size(10);
    for id in ["b01", "b02", "b06", "b09"] {
        let bench = pl_itc99::by_id(id).expect("benchmark exists");
        let opts = FlowOptions {
            vectors: 25,
            verify: false,
            ..FlowOptions::default()
        };
        group.bench_function(id, |b| {
            b.iter(|| {
                let row = run_flow(&bench, &opts).expect("flow succeeds");
                std::hint::black_box((row.pl_gates, row.delay_decrease_pct()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rows);
criterion_main!(benches);
