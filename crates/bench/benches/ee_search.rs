//! Criterion bench: cost of the paper's exhaustive trigger search
//! (14 support subsets per LUT4) and of the whole EE transformation —
//! word-parallel + memoized search against the retained per-assignment
//! baseline (the speedup recorded in `BENCH_ee_search.json`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pl_boolfn::TruthTable;
use pl_core::ee::EeOptions;
use pl_core::trigger::{search_triggers, search_triggers_baseline, TriggerCache};
use pl_core::PlNetlist;
use pl_techmap::{map_to_lut4, MapOptions};

fn random_masters(count: usize) -> Vec<TruthTable> {
    let mut x: u64 = 0x5EED_CAFE;
    (0..count)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            TruthTable::from_bits(4, x & 0xFFFF)
        })
        .collect()
}

fn bench_trigger_search(c: &mut Criterion) {
    let masters = random_masters(256);
    let arrivals = [1u32, 2, 3, 4];
    c.bench_function("trigger_search_256_lut4_masters", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for m in &masters {
                found += search_triggers(std::hint::black_box(m), &arrivals).len();
            }
            std::hint::black_box(found)
        })
    });
    c.bench_function("trigger_search_256_lut4_masters_baseline", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for m in &masters {
                found += search_triggers_baseline(std::hint::black_box(m), &arrivals).len();
            }
            std::hint::black_box(found)
        })
    });
}

/// The netlist-shaped search stream (per compute gate, with the LUT-class
/// repetition real designs exhibit) — where the memo cache applies.
fn bench_trigger_search_netlist_workload(c: &mut Criterion) {
    let workload = pl_bench::trigger_search_workload(&["b14"]);
    c.bench_function("trigger_search_b14_workload_memoized", |b| {
        b.iter(|| {
            let mut cache = TriggerCache::new();
            let mut found = 0usize;
            for (t, arr) in &workload {
                found += cache.search(std::hint::black_box(t), arr).len();
            }
            std::hint::black_box(found)
        })
    });
    c.bench_function("trigger_search_b14_workload_baseline", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for (t, arr) in &workload {
                found += search_triggers_baseline(std::hint::black_box(t), arr).len();
            }
            std::hint::black_box(found)
        })
    });
}

fn bench_ee_transform(c: &mut Criterion) {
    let bench = pl_itc99::by_id("b05").expect("b05 exists");
    let gates = (bench.build)().elaborate().expect("b05 elaborates");
    let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("b05 maps");
    let pl = PlNetlist::from_sync(&mapped).expect("b05 maps to PL");
    c.bench_function("ee_transform_b05", |b| {
        b.iter_batched(
            || pl.clone(),
            |netlist| {
                let report = netlist.with_early_evaluation(&EeOptions::default());
                std::hint::black_box(report.pairs().len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pl_mapping(c: &mut Criterion) {
    let bench = pl_itc99::by_id("b12").expect("b12 exists");
    let gates = (bench.build)().elaborate().expect("b12 elaborates");
    let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("b12 maps");
    c.bench_function("sync_to_pl_mapping_b12", |b| {
        b.iter(|| {
            let pl = PlNetlist::from_sync(std::hint::black_box(&mapped)).expect("maps");
            std::hint::black_box(pl.num_logic_gates())
        })
    });
}

criterion_group!(
    benches,
    bench_trigger_search,
    bench_trigger_search_netlist_workload,
    bench_ee_transform,
    bench_pl_mapping
);
criterion_main!(benches);
