//! Benchmark harness regenerating the DATE 2002 paper's exhibits.
//!
//! Since the pipeline moved into the `pl-flow` crate, this harness is a
//! thin presentation layer over it: [`run_flow`] runs one ITC99 catalog
//! entry through [`pl_flow::Pipeline::run`] and folds the artifacts into
//! one row of the paper's Table 3. [`table3`] runs the whole suite;
//! [`run_flows_parallel`] / [`table3_parallel`] scatter it across worker
//! threads (one benchmark per work item, bit-identical rows, deterministic
//! order); [`format_table3`] prints it in the paper's column layout. The
//! `table3`, `sweep` and `table1_2` binaries expose these from the command
//! line — `table3`, `sweep`, `ee_stats` and `bench_report` take `--jobs N`
//! to select the worker count (`0` = auto) — and the Criterion benches
//! measure the flow's own runtime costs.
//!
//! [`FlowOptions`], [`FlowError`], [`Lcg`] and [`lcg_vectors`] are
//! re-exported from `pl-flow` so existing harness callers keep compiling
//! unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pl_core::PlNetlist;
use pl_flow::{CircuitSource, Pipeline};
use pl_itc99::Benchmark;

pub use pl_flow::{lcg_vectors, FlowError, FlowOptions, Lcg};

/// One row of the paper's Table 3.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Benchmark id (`"b01"` …).
    pub id: &'static str,
    /// Table 3's circuit description.
    pub description: &'static str,
    /// PL gates without EE (LUTs + registers after mapping).
    pub pl_gates: usize,
    /// EE master/trigger pairs added ("EE Gates").
    pub ee_gates: usize,
    /// Average stable-input→stable-output delay without EE (ns).
    pub delay_no_ee: f64,
    /// Average delay with EE (ns).
    pub delay_ee: f64,
    /// Vectors simulated per variant.
    pub vectors: usize,
}

impl FlowResult {
    /// Delay difference (positive = EE is faster), ns.
    #[must_use]
    pub fn delay_diff(&self) -> f64 {
        self.delay_no_ee - self.delay_ee
    }

    /// Percent area increase: EE gates over PL gates.
    #[must_use]
    pub fn area_increase_pct(&self) -> f64 {
        if self.pl_gates == 0 {
            0.0
        } else {
            100.0 * self.ee_gates as f64 / self.pl_gates as f64
        }
    }

    /// Percent delay decrease (negative = slowdown).
    #[must_use]
    pub fn delay_decrease_pct(&self) -> f64 {
        if self.delay_no_ee == 0.0 {
            0.0
        } else {
            100.0 * self.delay_diff() / self.delay_no_ee
        }
    }
}

/// Runs the full reproduction flow for one benchmark — a thin wrapper
/// over [`pl_flow::Pipeline::run`] with the catalog source, keeping EE
/// enabled (a Table 3 row always compares plain against EE).
///
/// # Errors
///
/// Propagates failures from any pipeline stage; `Mismatch` if the PL
/// netlists ever disagree with each other or the synchronous reference.
pub fn run_flow(bench: &Benchmark, opts: &FlowOptions) -> Result<FlowResult, FlowError> {
    let pipeline = Pipeline::new(FlowOptions {
        ee_enabled: true,
        ..opts.clone()
    });
    let art = pipeline.run(&CircuitSource::Catalog(*bench))?;
    Ok(FlowResult {
        id: bench.id,
        description: bench.description,
        pl_gates: art.report.phased.logic_gates,
        ee_gates: art.pairs.len(),
        delay_no_ee: art.stats_plain.mean(),
        delay_ee: art.stats_ee.as_ref().expect("EE forced on").mean(),
        vectors: opts.vectors,
    })
}

/// Builds one benchmark's phased-logic netlists (plain, with-EE) through
/// the `pl-flow` stage chain (ingest → optimize → techmap → phased →
/// early_eval), stopping before simulation.
///
/// # Panics
///
/// Panics on unknown ids or flow failures (bench harness context).
#[must_use]
pub fn prepared_netlists(id: &str) -> (PlNetlist, PlNetlist) {
    let pipeline = Pipeline::new(FlowOptions::default());
    let src = CircuitSource::catalog(id).expect("benchmark exists");
    let ingested = pipeline.ingest(&src).expect("elaborates");
    let optimized = pipeline.optimize(ingested).expect("optimizes");
    let mapped = pipeline.techmap(optimized).expect("maps");
    let phased = pipeline.phased(&mapped).expect("PL maps");
    let early = pipeline.early_eval(phased);
    let ee = early.ee.expect("EE enabled by default");
    (early.plain, ee)
}

/// The per-compute-gate trigger-search stream `with_early_evaluation`
/// issues for the given benchmarks — the netlist-shaped workload measured
/// by both the `ee_search` Criterion bench and `bench_report` (one
/// definition so both report the same metric).
///
/// # Panics
///
/// Panics on unknown ids or flow failures (bench harness context).
#[must_use]
pub fn trigger_search_workload(ids: &[&str]) -> Vec<(pl_boolfn::TruthTable, Vec<u32>)> {
    let mut workload = Vec::new();
    for id in ids {
        let (plain, _) = prepared_netlists(id);
        let levels = plain.arrival_levels();
        for (idx, gate) in plain.gates().iter().enumerate() {
            if let pl_core::PlGateKind::Compute { table } = gate.kind() {
                let arr = plain.pin_arrivals(pl_core::PlGateId::from_index(idx), &levels);
                workload.push((*table, arr));
            }
        }
    }
    workload
}

/// Runs the whole suite (b01–b15) — the paper's Table 3.
///
/// # Errors
///
/// Stops at the first failing benchmark.
pub fn table3(opts: &FlowOptions) -> Result<Vec<FlowResult>, FlowError> {
    pl_itc99::catalog()
        .iter()
        .map(|b| run_flow(b, opts))
        .collect()
}

/// Fans [`run_flow`] out across up to `jobs` worker threads (`0` = auto),
/// one benchmark per work item. Each flow runs unchanged on a private
/// worker, so every row is bit-identical to its sequential [`table3`]
/// counterpart; rows come back in `benches` order.
///
/// # Errors
///
/// Reports the first failing benchmark **by suite order** (not by wall
/// clock), so the error is deterministic across worker counts.
pub fn run_flows_parallel(
    benches: &[Benchmark],
    opts: &FlowOptions,
    jobs: usize,
) -> Result<Vec<FlowResult>, FlowError> {
    pl_sim::parallel::scatter_gather(jobs, benches, |_, b| run_flow(b, opts))
        .into_iter()
        .collect()
}

/// Parallel [`table3`]: the whole suite scattered across `jobs` workers.
///
/// # Errors
///
/// Same conditions as [`run_flows_parallel`].
pub fn table3_parallel(opts: &FlowOptions, jobs: usize) -> Result<Vec<FlowResult>, FlowError> {
    run_flows_parallel(&pl_itc99::catalog(), opts, jobs)
}

/// Formats results in the paper's Table 3 column layout.
#[must_use]
pub fn format_table3(rows: &[FlowResult]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(
        s,
        "{:<36} {:>8} {:>8} {:>10} {:>10} {:>10} {:>7} {:>7}",
        "Description", "PL Gates", "EE Gates", "Avg (ns)", "Avg EE", "Diff", "%Area", "%Delay"
    )
    .expect("string write");
    writeln!(s, "{}", "-".repeat(103)).expect("string write");
    for r in rows {
        writeln!(
            s,
            "{:<36} {:>8} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>6.0}% {:>6.0}%",
            r.description,
            r.pl_gates,
            r.ee_gates,
            r.delay_no_ee,
            r.delay_ee,
            r.delay_diff(),
            r.area_increase_pct(),
            r.delay_decrease_pct(),
        )
        .expect("string write");
    }
    if !rows.is_empty() {
        let avg_delay: f64 =
            rows.iter().map(FlowResult::delay_decrease_pct).sum::<f64>() / rows.len() as f64;
        let avg_area: f64 =
            rows.iter().map(FlowResult::area_increase_pct).sum::<f64>() / rows.len() as f64;
        writeln!(s, "{}", "-".repeat(103)).expect("string write");
        writeln!(
            s,
            "{:<36} {:>66.0}% {:>6.0}%",
            "Average", avg_area, avg_delay
        )
        .expect("string write");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_runs_small_benchmark_end_to_end() {
        let bench = pl_itc99::by_id("b02").unwrap();
        let opts = FlowOptions {
            vectors: 20,
            ..FlowOptions::default()
        };
        let r = run_flow(&bench, &opts).unwrap();
        assert!(r.pl_gates > 0);
        assert!(r.delay_no_ee > 0.0);
        assert_eq!(r.vectors, 20);
    }

    #[test]
    fn parallel_flows_match_sequential_rows() {
        let opts = FlowOptions {
            vectors: 5,
            verify: false,
            ..FlowOptions::default()
        };
        let benches: Vec<_> = pl_itc99::catalog()
            .into_iter()
            .filter(|b| b.id == "b01" || b.id == "b02" || b.id == "b06")
            .collect();
        let sequential: Vec<FlowResult> = benches
            .iter()
            .map(|b| run_flow(b, &opts).unwrap())
            .collect();
        for jobs in [1, 4] {
            let par = run_flows_parallel(&benches, &opts, jobs).unwrap();
            assert_eq!(par.len(), sequential.len());
            for (p, s) in par.iter().zip(&sequential) {
                assert_eq!(p.id, s.id, "rows out of order at jobs={jobs}");
                assert_eq!(p.delay_no_ee.to_bits(), s.delay_no_ee.to_bits());
                assert_eq!(p.delay_ee.to_bits(), s.delay_ee.to_bits());
                assert_eq!((p.pl_gates, p.ee_gates), (s.pl_gates, s.ee_gates));
            }
        }
    }

    #[test]
    fn flow_error_crosses_threads() {
        fn ok<T: Send + Sync>() {}
        ok::<FlowError>();
        ok::<FlowResult>();
        ok::<FlowOptions>();
        ok::<Benchmark>();
    }

    #[test]
    fn run_flow_matches_hand_rolled_pipeline() {
        // The thin wrapper must reproduce the pre-refactor recipe exactly:
        // elaborate → LUT4-map → PL-map → EE → measure both variants with
        // the same seeded vectors. Bit-compare the delays.
        use pl_core::ee::EeOptions;
        use pl_core::PlNetlist;
        use pl_techmap::{map_with_report, MapOptions};

        let bench = pl_itc99::by_id("b06").unwrap();
        let opts = FlowOptions {
            vectors: 12,
            ..FlowOptions::default()
        };

        let gates = (bench.build)().elaborate().unwrap();
        let mapped = map_with_report(&gates, &MapOptions::default())
            .unwrap()
            .netlist;
        let plain = PlNetlist::from_sync(&mapped).unwrap();
        let pl_gates = plain.num_logic_gates();
        let report = PlNetlist::from_sync(&mapped)
            .unwrap()
            .with_early_evaluation(&EeOptions::default());
        let ee_gates = report.pairs().len();
        let ee_netlist = report.into_netlist();
        let (_, stats_plain) =
            pl_sim::measure_latency(&plain, &opts.delays, opts.vectors, opts.seed).unwrap();
        let (_, stats_ee) =
            pl_sim::measure_latency(&ee_netlist, &opts.delays, opts.vectors, opts.seed).unwrap();

        let r = run_flow(&bench, &opts).unwrap();
        assert_eq!(r.pl_gates, pl_gates);
        assert_eq!(r.ee_gates, ee_gates);
        assert_eq!(r.delay_no_ee.to_bits(), stats_plain.mean().to_bits());
        assert_eq!(r.delay_ee.to_bits(), stats_ee.mean().to_bits());
    }

    #[test]
    fn formatting_contains_all_rows() {
        let rows = vec![FlowResult {
            id: "b01",
            description: "FSM that compares serial flows",
            pl_gates: 25,
            ee_gates: 9,
            delay_no_ee: 49.0,
            delay_ee: 43.0,
            vectors: 100,
        }];
        let s = format_table3(&rows);
        assert!(s.contains("FSM that compares serial flows"));
        assert!(s.contains("36%")); // 9/25
        assert!(s.contains("12%")); // 6/49
    }

    #[test]
    fn percentages_match_paper_arithmetic() {
        // The paper's own b01 row: 25 gates, 9 EE, 49 -> 43 ns.
        let r = FlowResult {
            id: "b01",
            description: "",
            pl_gates: 25,
            ee_gates: 9,
            delay_no_ee: 49.0,
            delay_ee: 43.0,
            vectors: 100,
        };
        assert!((r.area_increase_pct() - 36.0).abs() < 0.01);
        assert!((r.delay_decrease_pct() - 12.24).abs() < 0.1);
        assert!((r.delay_diff() - 6.0).abs() < 1e-9);
    }
}
