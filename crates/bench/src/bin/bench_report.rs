//! Machine-readable performance report: `BENCH_sim.json`,
//! `BENCH_ee_search.json`, `BENCH_parallel.json`, `BENCH_pipeline.json`,
//! `BENCH_queue.json`, `BENCH_batch.json` and `BENCH_eco.json`.
//!
//! This is the cross-PR perf trajectory tracker. It measures, in one run:
//!
//! * **Simulator throughput** (`BENCH_sim.json`) — events/sec of the
//!   integer-tick engine vs the retained pre-refactor baseline
//!   (`pl_sim::reference`) streaming random vectors through the large
//!   ITC'99 designs (b14 "viper", b15 "i386 subset"), plus Table 3 latency
//!   ratios per benchmark from the standard flow (100 vectors, the
//!   paper's protocol).
//! * **Trigger-search throughput** (`BENCH_ee_search.json`) — LUT4 trigger
//!   searches/sec of the word-parallel search vs the per-assignment
//!   baseline, and the memoized netlist-level EE transformation time.
//! * **Parallel sweep scaling** (`BENCH_parallel.json`) — wall-clock of
//!   the sharded multi-vector sweep (`pl_sim::parallel::sweep_sharded`)
//!   on streamed b14/b15, sequential vs 4 workers, with a bit-identity
//!   check between the two runs. The recorded `host_cpus` value is the
//!   context for the speedup: on a single-core host the parallel run can
//!   only tie, while the outputs must still match exactly.
//! * **Pipelined single-stream scaling** (`BENCH_pipeline.json`) — ONE
//!   continuous vector stream on b14/b15 run three ways: the leader-only
//!   pass (state advance via `feed_vector`, no output collection — the
//!   cheap half of the pipelined sweep), the full sequential
//!   `run_stream`, and `pl_sim::parallel::sweep_pipelined` at 4 workers,
//!   with the pipelined outcome asserted bit-identical to the sequential
//!   one before any timing is reported.
//! * **Event-queue backends** (`BENCH_queue.json`) — events/sec of the
//!   engine scheduling through the binary heap vs the calendar/ladder
//!   queue (`pl_sim::QueueKind`) on the same streamed b14/b15 workload,
//!   with the two backends' outcomes asserted bit-identical (outputs,
//!   makespan, dispatched-event counts) before any timing is reported.
//! * **Word-parallel batch engine** (`BENCH_batch.json`) — events/sec and
//!   vectors/sec of `pl_sim::BatchSimulator` marching 64 substreams
//!   through one event flow with `u64` lane words, vs the same 64
//!   substreams run back to back on scalar simulators, on streamed
//!   b14/b15 — every lane asserted bit-identical to its scalar run
//!   before any timing is reported.
//! * **Incremental recompilation** (`BENCH_eco.json`) — wall-clock of a
//!   single-gate ECO edit recompiled through `pl_flow::EcoSession`
//!   (cone-limited re-techmap, trigger-cache reuse, downstream skip) vs
//!   a full `Pipeline::run` on the same edited netlist, on b14/b15 —
//!   the session's artifacts asserted bit-identical to the scratch
//!   compile before any timing is reported.
//!
//! Every file records the host CPU count and the `rustc -V` line it was
//! measured under, so a cross-PR trajectory diff can tell a code change
//! from a host change. Output files land in the current directory. Usage:
//!
//! ```text
//! cargo run --release -p pl-bench --bin bench_report [--quick] [--jobs J]
//! ```
//!
//! `--quick` shrinks vector/repetition counts (CI smoke mode); `--jobs J`
//! fans the Table 3 ratio flows out across J worker threads (`0` = one
//! per core) — rows are bit-identical at any J. Run with `--help` for the
//! full flag list.

use std::fmt::Write as _;
use std::time::Instant;

use pl_bench::{lcg_vectors, prepared_netlists, run_flow, trigger_search_workload, FlowOptions};
use pl_boolfn::TruthTable;
use pl_core::ee::EeOptions;
use pl_core::trigger::{search_triggers, search_triggers_baseline, TriggerCache};
use pl_core::PlNetlist;
use pl_sim::{BatchSimulator, DelayModel, PlSimulator, QueueKind, ReferenceSimulator};
use pl_techmap::{map_to_lut4, MapOptions};

struct SimRow {
    id: String,
    vectors: usize,
    events: u64,
    ref_events: u64,
    ref_secs: f64,
    new_secs: f64,
}

struct RatioRow {
    id: String,
    delay_no_ee: f64,
    delay_ee: f64,
}

fn measure_sim(id: &str, vectors: usize) -> SimRow {
    let (_, pl) = prepared_netlists(id);
    let vecs = lcg_vectors(
        pl.input_gates().len(),
        vectors,
        0x5EED_0000 + vectors as u64,
    );

    let mut ref_sim = ReferenceSimulator::new(&pl, DelayModel::default()).expect("live");
    let t0 = Instant::now();
    let ref_out = ref_sim.run_stream(&vecs).expect("simulates");
    let ref_secs = t0.elapsed().as_secs_f64();

    let mut new_sim = PlSimulator::new(&pl, DelayModel::default()).expect("live");
    let t0 = Instant::now();
    let new_out = new_sim.run_stream(&vecs).expect("simulates");
    let new_secs = t0.elapsed().as_secs_f64();

    assert_eq!(ref_out.outputs, new_out.outputs, "{id}: engines diverged");
    assert!(
        (ref_out.makespan - new_out.makespan).abs() < 1e-6,
        "{id}: makespans diverged beyond quantization: {} vs {}",
        ref_out.makespan,
        new_out.makespan
    );
    // Event counts may differ by a handful: at exact-tie times the f64
    // engine's rounding noise picks one EE produce path while the tick
    // engine sees a true tie — values and timestamps are unaffected, only
    // the count of stale (no-op) events differs. Report each engine against
    // its own count.
    SimRow {
        id: id.to_string(),
        vectors,
        events: new_sim.events_processed(),
        ref_events: ref_sim.events_processed(),
        ref_secs,
        new_secs,
    }
}

fn measure_ratios(quick: bool, jobs: usize) -> Vec<RatioRow> {
    let opts = FlowOptions {
        // Full runs use the paper's 100-vector protocol; the `--jobs`
        // fan-out keeps the doubled workload inside the wall-time budget
        // on multi-core hosts.
        vectors: if quick { 10 } else { 100 },
        verify: false,
        ..FlowOptions::default()
    };
    let catalog = pl_itc99::catalog();
    pl_sim::parallel::scatter_gather(jobs, &catalog, |_, b| {
        // A failing flow must abort the report loudly: silently dropping
        // a row would make the cross-PR trajectory file read as complete
        // while a benchmark vanished.
        let row = run_flow(b, &opts).unwrap_or_else(|e| panic!("flow failed for {}: {e}", b.id));
        RatioRow {
            id: row.id.to_string(),
            delay_no_ee: row.delay_no_ee,
            delay_ee: row.delay_ee,
        }
    })
}

fn random_masters(count: usize) -> Vec<TruthTable> {
    let mut x: u64 = 0x5EED_CAFE;
    (0..count)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            TruthTable::from_bits(4, x & 0xFFFF)
        })
        .collect()
}

/// The host-context lines every `BENCH_*.json` carries — CPU count and
/// the toolchain the measurement was compiled with — so the cross-PR
/// trajectory files can separate code regressions from host changes.
fn host_meta_json() -> String {
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let rustc = std::process::Command::new("rustc")
        .arg("-V")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string());
    format!("  \"host_cpus\": {host_cpus},\n  \"rustc\": \"{rustc}\",\n")
}

const SPEC: pl_flow::cli::CliSpec = pl_flow::cli::CliSpec {
    bin: "bench_report",
    about:
        "write BENCH_sim.json, BENCH_ee_search.json, BENCH_parallel.json, BENCH_pipeline.json, BENCH_queue.json, BENCH_batch.json and BENCH_eco.json",
    positional: None,
    options: &[
        pl_flow::cli::OptSpec {
            long: "--quick",
            value: None,
            help: "shrink vector/repetition counts (CI smoke mode)",
        },
        pl_flow::cli::OptSpec {
            long: "--jobs",
            value: Some("J"),
            help: "worker threads for the Table 3 ratio flows (0 = one per core)",
        },
    ],
};

fn main() {
    let args = SPEC.parse_env();
    let quick = args.flag("--quick");
    let jobs: usize = args.value_or("--jobs", 1);
    let host_meta = host_meta_json();

    // ---- BENCH_sim.json -------------------------------------------------
    let stream_vectors = if quick { 20 } else { 200 };
    let mut rows = Vec::new();
    for id in ["b14", "b15"] {
        let row = measure_sim(id, stream_vectors);
        println!(
            "{}: {} events, reference {:.3}s ({:.0} ev/s), engine {:.3}s ({:.0} ev/s), speedup {:.2}x",
            row.id,
            row.events,
            row.ref_secs,
            row.ref_events as f64 / row.ref_secs,
            row.new_secs,
            row.events as f64 / row.new_secs,
            row.ref_secs / row.new_secs,
        );
        rows.push(row);
    }
    let ratios = measure_ratios(quick, jobs);

    let mut sim_json = format!("{{\n{host_meta}  \"streamed\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            sim_json,
            "    {{\"bench\": \"{}\", \"vectors\": {}, \"events\": {}, \"reference_secs\": {:.6}, \"engine_secs\": {:.6}, \"reference_events_per_sec\": {:.1}, \"engine_events_per_sec\": {:.1}, \"speedup\": {:.3}}}{}",
            r.id,
            r.vectors,
            r.events,
            r.ref_secs,
            r.new_secs,
            r.ref_events as f64 / r.ref_secs,
            r.events as f64 / r.new_secs,
            r.ref_secs / r.new_secs,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    sim_json.push_str("  ],\n  \"table3_latency_ratios\": [\n");
    for (i, r) in ratios.iter().enumerate() {
        let _ = writeln!(
            sim_json,
            "    {{\"bench\": \"{}\", \"delay_no_ee_ns\": {:.4}, \"delay_ee_ns\": {:.4}, \"ratio\": {:.4}}}{}",
            r.id,
            r.delay_no_ee,
            r.delay_ee,
            if r.delay_ee > 0.0 { r.delay_no_ee / r.delay_ee } else { 0.0 },
            if i + 1 < ratios.len() { "," } else { "" },
        );
    }
    sim_json.push_str("  ]\n}\n");
    std::fs::write("BENCH_sim.json", &sim_json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");

    // ---- BENCH_ee_search.json ------------------------------------------
    let masters = random_masters(if quick { 64 } else { 512 });
    let arrivals = [1u32, 2, 3, 4];
    let reps = if quick { 2 } else { 20 };

    let t0 = Instant::now();
    let mut found_base = 0usize;
    for _ in 0..reps {
        for m in &masters {
            found_base += search_triggers_baseline(std::hint::black_box(m), &arrivals).len();
        }
    }
    let base_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut found_new = 0usize;
    for _ in 0..reps {
        for m in &masters {
            found_new += search_triggers(std::hint::black_box(m), &arrivals).len();
        }
    }
    let new_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        found_base, found_new,
        "search rewrite changed the candidate count"
    );

    let searches = (reps * masters.len()) as f64;
    println!(
        "trigger search: baseline {:.0}/s, word-parallel {:.0}/s, speedup {:.2}x",
        searches / base_secs,
        searches / new_secs,
        base_secs / new_secs
    );

    // Netlist-shaped workload: the exact per-gate search stream the EE
    // transformation issues on the large designs, where structurally
    // repeated LUT classes let the memo cache answer most searches. This
    // is the trigger-search throughput that matters end-to-end.
    let workload = trigger_search_workload(&["b14", "b15"]);
    let wl_reps = if quick { 2 } else { 20 };
    let t0 = Instant::now();
    let mut base_n = 0usize;
    for _ in 0..wl_reps {
        for (t, arr) in &workload {
            base_n += search_triggers_baseline(std::hint::black_box(t), arr).len();
        }
    }
    let wl_base_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut memo_n = 0usize;
    for _ in 0..wl_reps {
        let mut cache = TriggerCache::new();
        for (t, arr) in &workload {
            memo_n += cache.search(std::hint::black_box(t), arr).len();
        }
    }
    let wl_memo_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        base_n, memo_n,
        "memoized workload changed the candidate count"
    );
    let wl_searches = (wl_reps * workload.len()) as f64;
    println!(
        "netlist workload ({} gate searches): baseline {:.0}/s, word-parallel+memo {:.0}/s, speedup {:.2}x",
        workload.len(),
        wl_searches / wl_base_secs,
        wl_searches / wl_memo_secs,
        wl_base_secs / wl_memo_secs
    );

    // Memoized netlist-level transformation (the per-netlist LUT-class
    // cache) measured on the largest designs.
    let mut memo_lines = Vec::new();
    for id in ["b14", "b15"] {
        let bench = pl_itc99::by_id(id).expect("exists");
        let gates = (bench.build)().elaborate().expect("elaborates");
        let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("maps");
        let pl = PlNetlist::from_sync(&mapped).expect("PL maps");
        let t0 = Instant::now();
        let report = pl.with_early_evaluation(&EeOptions::default());
        let secs = t0.elapsed().as_secs_f64();
        let (hits, misses) = (report.cache_hits(), report.cache_misses());
        println!(
            "{id}: ee transform {:.3}s, {} pairs, cache {} hits / {} misses",
            secs,
            report.pairs().len(),
            hits,
            misses
        );
        memo_lines.push(format!(
            "    {{\"bench\": \"{id}\", \"transform_secs\": {:.6}, \"pairs\": {}, \"cache_hits\": {hits}, \"cache_misses\": {misses}}}",
            secs,
            report.pairs().len(),
        ));
    }

    let mut ee_json = format!("{{\n{host_meta}");
    let _ = writeln!(
        ee_json,
        "  \"trigger_search_random_luts\": {{\"masters\": {}, \"reps\": {reps}, \"baseline_searches_per_sec\": {:.1}, \"word_parallel_searches_per_sec\": {:.1}, \"speedup\": {:.3}}},",
        masters.len(),
        searches / base_secs,
        searches / new_secs,
        base_secs / new_secs,
    );
    let _ = writeln!(
        ee_json,
        "  \"trigger_search_netlist_workload\": {{\"gate_searches\": {}, \"reps\": {wl_reps}, \"baseline_searches_per_sec\": {:.1}, \"memoized_searches_per_sec\": {:.1}, \"speedup\": {:.3}}},",
        workload.len(),
        wl_searches / wl_base_secs,
        wl_searches / wl_memo_secs,
        wl_base_secs / wl_memo_secs,
    );
    ee_json.push_str("  \"ee_transform\": [\n");
    ee_json.push_str(&memo_lines.join(",\n"));
    ee_json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_ee_search.json", &ee_json).expect("write BENCH_ee_search.json");
    println!("wrote BENCH_ee_search.json");

    // ---- BENCH_parallel.json -------------------------------------------
    // The sharded multi-vector sweep on the streamed b14/b15 workload:
    // the same shard schedule run sequentially (jobs=1) and on PAR_WORKERS
    // threads, merged outcomes asserted bit-identical before any timing is
    // reported. Timing follows the other sections' protocol: a warm-up
    // pass of each configuration, then interleaved repetitions with the
    // minimum kept, so cache warm-up and ordering noise cannot fabricate
    // a scaling signal. Speedup is bounded by physical cores; `host_cpus`
    // is recorded so a ~1.0 figure from a single-core CI container is not
    // mistaken for a scaling regression.
    const PAR_WORKERS: usize = 4;
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let par_vectors: usize = if quick { 32 } else { 200 };
    let par_reps = if quick { 2 } else { 5 };
    let shards = 8usize;
    let shard_len = par_vectors.div_ceil(shards);
    let mut par_lines = Vec::new();
    for id in ["b14", "b15"] {
        let (_, pl) = prepared_netlists(id);
        let vecs = lcg_vectors(
            pl.input_gates().len(),
            par_vectors,
            0x5EED_0000 + par_vectors as u64,
        );
        let delays = DelayModel::default();
        // Warm-up (also the bit-identity check between the two modes).
        let seq = pl_sim::sweep_sharded(&pl, &delays, &vecs, shard_len, 1).expect("sweeps");
        let par =
            pl_sim::sweep_sharded(&pl, &delays, &vecs, shard_len, PAR_WORKERS).expect("sweeps");
        assert_eq!(seq, par, "{id}: parallel sweep diverged from sequential");
        let (mut seq_secs, mut par_secs) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..par_reps {
            let t0 = Instant::now();
            let r = pl_sim::sweep_sharded(&pl, &delays, &vecs, shard_len, 1).expect("sweeps");
            seq_secs = seq_secs.min(t0.elapsed().as_secs_f64());
            debug_assert_eq!(r, seq);
            let t0 = Instant::now();
            let r =
                pl_sim::sweep_sharded(&pl, &delays, &vecs, shard_len, PAR_WORKERS).expect("sweeps");
            par_secs = par_secs.min(t0.elapsed().as_secs_f64());
            debug_assert_eq!(r, seq);
        }
        println!(
            "{id}: sharded sweep ({par_vectors} vectors, {shards} shards, min of {par_reps}) sequential {seq_secs:.3}s, {PAR_WORKERS} workers {par_secs:.3}s, speedup {:.2}x (host has {host_cpus} cpu(s)), outputs bit-identical",
            seq_secs / par_secs,
        );
        par_lines.push(format!(
            "    {{\"bench\": \"{id}\", \"vectors\": {par_vectors}, \"shards\": {shards}, \"workers\": {PAR_WORKERS}, \"reps\": {par_reps}, \"sequential_secs\": {seq_secs:.6}, \"parallel_secs\": {par_secs:.6}, \"speedup\": {:.3}, \"bit_identical\": true}}",
            seq_secs / par_secs,
        ));
    }
    let mut par_json = format!("{{\n{host_meta}");
    let _ = writeln!(
        par_json,
        "  \"note\": \"secs are the min over reps interleaved repetitions after a warm-up pass; speedup is bounded by host_cpus; bit_identical asserts the parallel merge equals the sequential run exactly\","
    );
    par_json.push_str("  \"sharded_sweeps\": [\n");
    par_json.push_str(&par_lines.join(",\n"));
    par_json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_parallel.json", &par_json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");

    // ---- BENCH_pipeline.json -------------------------------------------
    // Pipelined SINGLE-stream parallelism (state carries across every
    // vector — no shard resets): leader-only vs full-replay vs pipelined
    // timing on one continuous b14/b15 stream. The leader pass is the
    // cheap half of `sweep_pipelined` (injection-only state advance, no
    // output collection or latency bookkeeping); the sequential
    // `run_stream` is what every window's replay adds up to; the pipelined
    // sweep overlaps the two across PIPE_WORKERS threads. Bit-identity
    // between the pipelined and sequential outcomes is asserted before any
    // timing is recorded, and timing follows the other sections' protocol
    // (warm-up pass, then interleaved reps with the minimum kept).
    const PIPE_WORKERS: usize = 4;
    let pipe_vectors: usize = if quick { 24 } else { 120 };
    let pipe_window: usize = if quick { 4 } else { 10 };
    let pipe_reps = if quick { 2 } else { 5 };
    let mut pipe_lines = Vec::new();
    for id in ["b14", "b15"] {
        let (_, pl) = prepared_netlists(id);
        let vecs = lcg_vectors(
            pl.input_gates().len(),
            pipe_vectors,
            0x5EED_0000 + pipe_vectors as u64,
        );
        let delays = DelayModel::default();
        // Warm-up + the bit-identity gate.
        let seq = PlSimulator::new(&pl, delays.clone())
            .expect("live")
            .run_stream(&vecs)
            .expect("streams");
        let piped =
            pl_sim::sweep_pipelined(&pl, &delays, &vecs, pipe_window, PIPE_WORKERS).expect("pipes");
        assert_eq!(seq, piped, "{id}: pipelined sweep diverged from run_stream");
        let (mut leader_secs, mut seq_secs, mut pipe_secs) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..pipe_reps {
            let t0 = Instant::now();
            let mut leader = PlSimulator::new(&pl, delays.clone()).expect("live");
            for v in &vecs {
                leader.feed_vector(v).expect("feeds");
            }
            leader_secs = leader_secs.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let r = PlSimulator::new(&pl, delays.clone())
                .expect("live")
                .run_stream(&vecs)
                .expect("streams");
            seq_secs = seq_secs.min(t0.elapsed().as_secs_f64());
            debug_assert_eq!(r, seq);
            let t0 = Instant::now();
            let r = pl_sim::sweep_pipelined(&pl, &delays, &vecs, pipe_window, PIPE_WORKERS)
                .expect("pipes");
            pipe_secs = pipe_secs.min(t0.elapsed().as_secs_f64());
            debug_assert_eq!(r, seq);
        }
        println!(
            "{id}: pipelined stream ({pipe_vectors} vectors, window {pipe_window}, min of {pipe_reps}) leader-only {leader_secs:.3}s, sequential {seq_secs:.3}s, {PIPE_WORKERS} workers {pipe_secs:.3}s, speedup {:.2}x (host has {host_cpus} cpu(s)), outputs bit-identical",
            seq_secs / pipe_secs,
        );
        pipe_lines.push(format!(
            "    {{\"bench\": \"{id}\", \"vectors\": {pipe_vectors}, \"window\": {pipe_window}, \"workers\": {PIPE_WORKERS}, \"reps\": {pipe_reps}, \"leader_secs\": {leader_secs:.6}, \"sequential_secs\": {seq_secs:.6}, \"pipelined_secs\": {pipe_secs:.6}, \"speedup\": {:.3}, \"bit_identical\": true}}",
            seq_secs / pipe_secs,
        ));
    }
    let mut pipe_json = format!("{{\n{host_meta}");
    let _ = writeln!(
        pipe_json,
        "  \"note\": \"one continuous vector stream (state carries across vectors, unlike the sharded sweep's resets); leader_secs is the injection-only state-advance pass, sequential_secs the full run_stream every window replay adds up to, pipelined_secs the leader+replay overlap on workers threads; secs are the min over reps after a warm-up; the pipelined outcome is asserted bit-identical to run_stream; speedup is bounded by host_cpus and by the leader's share of the work\","
    );
    pipe_json.push_str("  \"pipelined_streams\": [\n");
    pipe_json.push_str(&pipe_lines.join(",\n"));
    pipe_json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_pipeline.json", &pipe_json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");

    // ---- BENCH_queue.json ----------------------------------------------
    // Event-queue backend comparison: the same continuous vector stream
    // through the integer-tick engine scheduling via the binary heap vs
    // the calendar/ladder queue. The two backends must be observationally
    // indistinguishable — outputs, makespan AND dispatched-event counts
    // are asserted identical before any timing is recorded — so the only
    // thing this section measures is queue-operation cost. Timing follows
    // the other sections' protocol (warm-up pass, then interleaved reps
    // with the minimum kept).
    let queue_vectors: usize = if quick { 20 } else { 200 };
    let queue_reps = if quick { 2 } else { 5 };
    let mut queue_lines = Vec::new();
    for id in ["b14", "b15"] {
        let (_, pl) = prepared_netlists(id);
        let vecs = lcg_vectors(
            pl.input_gates().len(),
            queue_vectors,
            0x5EED_0000 + queue_vectors as u64,
        );
        let delays = DelayModel::default();
        // Warm-up + the bit-identity gate.
        let mut heap_sim =
            PlSimulator::with_queue(&pl, delays.clone(), QueueKind::Heap).expect("live");
        let heap_out = heap_sim.run_stream(&vecs).expect("streams");
        let mut ladder_sim =
            PlSimulator::with_queue(&pl, delays.clone(), QueueKind::Ladder).expect("live");
        let ladder_out = ladder_sim.run_stream(&vecs).expect("streams");
        assert_eq!(heap_out, ladder_out, "{id}: ladder diverged from heap");
        assert_eq!(
            heap_sim.events_processed(),
            ladder_sim.events_processed(),
            "{id}: backends dispatched different event counts"
        );
        let events = heap_sim.events_processed();
        let (mut heap_secs, mut ladder_secs) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..queue_reps {
            for (kind, best) in [
                (QueueKind::Heap, &mut heap_secs),
                (QueueKind::Ladder, &mut ladder_secs),
            ] {
                let t0 = Instant::now();
                let r = PlSimulator::with_queue(&pl, delays.clone(), kind)
                    .expect("live")
                    .run_stream(&vecs)
                    .expect("streams");
                *best = best.min(t0.elapsed().as_secs_f64());
                debug_assert_eq!(r, heap_out);
            }
        }
        println!(
            "{id}: queue backends ({queue_vectors} vectors, {events} events, min of {queue_reps}) heap {heap_secs:.3}s ({:.0} ev/s), ladder {ladder_secs:.3}s ({:.0} ev/s), ladder speedup {:.2}x, outputs bit-identical",
            events as f64 / heap_secs,
            events as f64 / ladder_secs,
            heap_secs / ladder_secs,
        );
        queue_lines.push(format!(
            "    {{\"bench\": \"{id}\", \"vectors\": {queue_vectors}, \"events\": {events}, \"reps\": {queue_reps}, \"heap_secs\": {heap_secs:.6}, \"ladder_secs\": {ladder_secs:.6}, \"heap_events_per_sec\": {:.1}, \"ladder_events_per_sec\": {:.1}, \"ladder_speedup\": {:.3}, \"bit_identical\": true}}",
            events as f64 / heap_secs,
            events as f64 / ladder_secs,
            heap_secs / ladder_secs,
        ));
    }
    let mut queue_json = format!("{{\n{host_meta}");
    let _ = writeln!(
        queue_json,
        "  \"note\": \"the same streamed workload scheduled through both pl_sim::QueueKind backends; secs are the min over reps after a warm-up; bit_identical asserts outputs, makespan and dispatched-event counts match exactly, so only queue-operation cost differs\","
    );
    queue_json.push_str("  \"queue_backends\": [\n");
    queue_json.push_str(&queue_lines.join(",\n"));
    queue_json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_queue.json", &queue_json).expect("write BENCH_queue.json");
    println!("wrote BENCH_queue.json");

    // ---- BENCH_batch.json ----------------------------------------------
    // Word-parallel batch engine vs sequential scalar runs: 64 substreams
    // of `batch_rounds` vectors each on the streamed b14/b15 workload. The
    // batch engine marches all 64 substreams through ONE event flow with
    // u64 lane words (every gate evaluation computes all 64 lanes bitwise),
    // while the scalar pass runs the same 64 substreams back to back on
    // fresh PlSimulators. Every lane is asserted bit-identical to its
    // substream's scalar run, vector for vector, BEFORE any timing is
    // recorded — so the only thing this section measures is the lane win.
    // Timing follows the other sections' protocol (warm-up pass, then
    // interleaved reps with the minimum kept).
    let batch_rounds: usize = if quick { 2 } else { 4 };
    let batch_reps = if quick { 2 } else { 5 };
    let mut batch_lines = Vec::new();
    for id in ["b14", "b15"] {
        let (_, pl) = prepared_netlists(id);
        let total = 64 * batch_rounds;
        let all = lcg_vectors(pl.input_gates().len(), total, 0x5EED_0000 + total as u64);
        let streams: Vec<&[Vec<bool>]> = all.chunks(batch_rounds).collect();
        let delays = DelayModel::default();
        // Warm-up + the lane-equivalence gate.
        let mut scalar_events = 0u64;
        let scalar_outs: Vec<_> = streams
            .iter()
            .map(|s| {
                let mut sim = PlSimulator::new(&pl, delays.clone()).expect("live");
                let r = sim.run_stream(s).expect("streams");
                scalar_events += sim.events_processed();
                r.outputs
            })
            .collect();
        let mut batch_sim = BatchSimulator::new(&pl, delays.clone()).expect("live");
        let batch_outs = batch_sim.run_lanes(&streams).expect("runs");
        let batch_events = batch_sim.events_processed();
        for (lane, (b, s)) in batch_outs.iter().zip(&scalar_outs).enumerate() {
            assert_eq!(
                &b.outputs, s,
                "{id}: lane {lane} diverged from its scalar run"
            );
        }
        let (mut scalar_secs, mut batch_secs) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..batch_reps {
            let t0 = Instant::now();
            for s in &streams {
                let r = PlSimulator::new(&pl, delays.clone())
                    .expect("live")
                    .run_stream(s)
                    .expect("streams");
                std::hint::black_box(&r);
            }
            scalar_secs = scalar_secs.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let r = BatchSimulator::new(&pl, delays.clone())
                .expect("live")
                .run_lanes(&streams)
                .expect("runs");
            batch_secs = batch_secs.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(&r);
        }
        println!(
            "{id}: batch engine (64 substreams x {batch_rounds} vectors, min of {batch_reps}) scalar {scalar_secs:.3}s ({:.0} vec/s), 64-lane {batch_secs:.3}s ({:.0} vec/s), speedup {:.2}x, all lanes bit-identical",
            total as f64 / scalar_secs,
            total as f64 / batch_secs,
            scalar_secs / batch_secs,
        );
        batch_lines.push(format!(
            "    {{\"bench\": \"{id}\", \"substreams\": 64, \"rounds_per_substream\": {batch_rounds}, \"vectors\": {total}, \"reps\": {batch_reps}, \"scalar_secs\": {scalar_secs:.6}, \"batch_secs\": {batch_secs:.6}, \"scalar_events\": {scalar_events}, \"batch_events\": {batch_events}, \"scalar_events_per_sec\": {:.1}, \"batch_events_per_sec\": {:.1}, \"scalar_vectors_per_sec\": {:.1}, \"batch_vectors_per_sec\": {:.1}, \"speedup\": {:.3}, \"bit_identical\": true}}",
            scalar_events as f64 / scalar_secs,
            batch_events as f64 / batch_secs,
            total as f64 / scalar_secs,
            total as f64 / batch_secs,
            scalar_secs / batch_secs,
        ));
    }
    let mut batch_json = format!("{{\n{host_meta}");
    let _ = writeln!(
        batch_json,
        "  \"note\": \"64 independent substreams run once through the u64-lane batch engine (one event flow, all lanes per gate eval) vs back to back on scalar simulators; secs are the min over reps after a warm-up; bit_identical asserts every lane equals its substream's scalar run vector for vector before timing; batch_events counts the single shared schedule, so events/sec compares per-schedule dispatch cost while vectors/sec compares end-to-end throughput\","
    );
    batch_json.push_str("  \"batch_streams\": [\n");
    batch_json.push_str(&batch_lines.join(",\n"));
    batch_json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_batch.json", &batch_json).expect("write BENCH_batch.json");
    println!("wrote BENCH_batch.json");

    // ---- BENCH_eco.json ------------------------------------------------
    // Incremental recompilation vs from-scratch: a single-gate table edit
    // on the two largest catalog designs, applied through an `EcoSession`
    // (cone-limited re-techmap + trigger-cache reuse) and timed against a
    // full `Pipeline::run` on the same edited netlist. Bit-identity of
    // the session's artifacts with the scratch compile is asserted BEFORE
    // any timing, so the file can only ever report a speedup on results
    // that are exactly equal. Each timed rep alternates the table between
    // the original and the flipped bits — re-applying an identical table
    // would hit the downstream-skip path and time nothing.
    let eco_vectors = if quick { 4 } else { 16 };
    let eco_reps = if quick { 2 } else { 5 };
    let mut eco_lines = Vec::new();
    for id in ["b14", "b15"] {
        let pipeline = pl_flow::Pipeline::new(FlowOptions {
            vectors: eco_vectors,
            verify: false,
            ..FlowOptions::default()
        });
        let source = pl_flow::CircuitSource::catalog(id).expect("catalog id");
        let mut session = pipeline.eco_session(&source).expect("compiles");
        let lut = live_lut(session.netlist());
        let orig = session
            .netlist()
            .node(lut)
            .lut_table()
            .expect("is a LUT")
            .bits();
        let edit = |bits: u64| {
            [pl_flow::EcoEdit::ReplaceTable {
                node: pl_flow::NodeRef::Id(lut.index()),
                bits,
            }]
        };

        // The equivalence gate: flip once, compare against scratch.
        let out = session.apply_eco(&edit(orig ^ 1)).expect("eco applies");
        let scratch = pipeline
            .run(&pl_flow::CircuitSource::Netlist {
                name: id.to_string(),
                netlist: session.netlist().clone(),
            })
            .expect("scratch compile");
        let art = session.artifacts();
        assert_eq!(art.mapped, scratch.mapped, "{id}: mapped diverged");
        assert_eq!(art.outputs, scratch.outputs, "{id}: outputs diverged");
        assert_eq!(art.pairs, scratch.pairs, "{id}: EE pairs diverged");
        let (cuts_reused, two_nodes) = (out.eco.cuts_reused, out.eco.two_nodes);
        let (hits, misses) = (out.eco.trigger_hits, out.eco.trigger_misses);

        let (mut inc_secs, mut full_secs) = (f64::INFINITY, f64::INFINITY);
        for rep in 0..eco_reps {
            let bits = if rep % 2 == 0 { orig } else { orig ^ 1 };
            let t0 = Instant::now();
            let o = session.apply_eco(&edit(bits)).expect("eco applies");
            inc_secs = inc_secs.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(&o);
            let t0 = Instant::now();
            let r = pipeline
                .run(&pl_flow::CircuitSource::Netlist {
                    name: id.to_string(),
                    netlist: session.netlist().clone(),
                })
                .expect("full recompile");
            full_secs = full_secs.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(&r);
        }
        println!(
            "{id}: eco single-gate edit ({eco_vectors} vectors, min of {eco_reps}) incremental {inc_secs:.3}s, full {full_secs:.3}s, speedup {:.2}x, cuts reused {cuts_reused}/{two_nodes}, cache {hits}h/{misses}m, bit-identical",
            full_secs / inc_secs,
        );
        eco_lines.push(format!(
            "    {{\"bench\": \"{id}\", \"vectors\": {eco_vectors}, \"reps\": {eco_reps}, \"incremental_secs\": {inc_secs:.6}, \"full_secs\": {full_secs:.6}, \"speedup\": {:.3}, \"cuts_reused\": {cuts_reused}, \"two_input_nodes\": {two_nodes}, \"trigger_cache_hits\": {hits}, \"trigger_cache_misses\": {misses}, \"bit_identical\": true}}",
            full_secs / inc_secs,
        ));
    }
    let mut eco_json = format!("{{\n{host_meta}");
    let _ = writeln!(
        eco_json,
        "  \"note\": \"one single-gate table edit recompiled incrementally (EcoSession: cone-limited re-techmap, trigger-cache reuse) vs a full Pipeline::run on the same edited netlist; secs are the min over reps; bit_identical asserts the session's mapped netlist, outputs and EE pairs equal the scratch compile's before timing; the timed edit alternates tables so every apply recompiles instead of hitting the downstream-skip path\","
    );
    eco_json.push_str("  \"eco\": [\n");
    eco_json.push_str(&eco_lines.join(",\n"));
    eco_json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_eco.json", &eco_json).expect("write BENCH_eco.json");
    println!("wrote BENCH_eco.json");
}

/// The edit target for the ECO section: the highest-id LUT reachable
/// backwards from the primary outputs and DFF data pins, so the flip is
/// guaranteed to land in the mapper's demand cone.
fn live_lut(n: &pl_netlist::Netlist) -> pl_netlist::NodeId {
    let mut stack: Vec<pl_netlist::NodeId> = n.outputs().iter().map(|(_, id)| *id).collect();
    stack.extend(n.dffs().iter().copied());
    let mut seen = vec![false; n.len()];
    let mut best: Option<pl_netlist::NodeId> = None;
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.index()], true) {
            continue;
        }
        if n.node(id).is_lut() && best.is_none_or(|b| id > b) {
            best = Some(id);
        }
        stack.extend(n.node(id).fanins());
    }
    best.expect("design has a live LUT")
}
