//! Per-benchmark anatomy of the early-evaluation pairs: coverage and
//! support-size distributions, arrival-gap histogram, and the Equation-1
//! cost spread — the data behind the paper's observation that arithmetic
//! circuits benefit most.
//!
//! `--jobs J` analyzes benchmarks on J worker threads (`0` = one per
//! core); rows always print in the requested order (the whole suite when
//! no ids are given). Run with `--help` for the full flag list.

use pl_core::ee::EeOptions;
use pl_core::PlNetlist;
use pl_flow::cli::{CliSpec, OptSpec, PositionalSpec};
use pl_sim::parallel::scatter_gather;
use pl_techmap::{map_to_lut4, MapOptions};

const SPEC: CliSpec = CliSpec {
    bin: "ee_stats",
    about: "per-benchmark anatomy of the early-evaluation pairs",
    positional: Some(PositionalSpec {
        name: "<bXX>",
        help: "benchmark ids to analyze (default: the whole suite)",
        many: true,
        required: false,
    }),
    options: &[OptSpec {
        long: "--jobs",
        value: Some("J"),
        help: "worker threads (0 = one per core)",
    }],
};

fn analyze(bench: &pl_itc99::Benchmark) -> String {
    let gates = (bench.build)().elaborate().expect("elaborates");
    let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("maps");
    let pl = PlNetlist::from_sync(&mapped).expect("PL maps");
    let logic = pl.num_logic_gates();
    let report = pl.with_early_evaluation(&EeOptions::default());

    let mut by_size = [0usize; 4];
    let mut coverages: Vec<f64> = Vec::new();
    let mut gaps: Vec<u32> = Vec::new();
    let mut costs: Vec<f64> = Vec::new();
    for p in report.pairs() {
        by_size[p.candidate.support.count_ones() as usize] += 1;
        coverages.push(p.candidate.coverage);
        gaps.push(p.candidate.m_max - p.candidate.t_max);
        costs.push(p.cost());
    }
    coverages.sort_by(f64::total_cmp);
    costs.sort_by(f64::total_cmp);
    let med = |v: &[f64]| if v.is_empty() { 0.0 } else { v[v.len() / 2] };
    let gap_stats = if gaps.is_empty() {
        (0, 0.0, 0)
    } else {
        (
            *gaps.iter().min().expect("non-empty"),
            f64::from(gaps.iter().sum::<u32>()) / gaps.len() as f64,
            *gaps.iter().max().expect("non-empty"),
        )
    };
    format!(
        "{:<5} {:>6} {:>6} | {:>7}/{:>6}/{:>6} | {:>5.2}/{:>5.2}/{:>5.2} | {:>4}/{:>4.1}/{:>4} | {:>10.2}",
        bench.id,
        logic,
        report.pairs().len(),
        by_size[1],
        by_size[2],
        by_size[3],
        coverages.first().copied().unwrap_or(0.0),
        med(&coverages),
        coverages.last().copied().unwrap_or(0.0),
        gap_stats.0,
        gap_stats.1,
        gap_stats.2,
        med(&costs),
    )
}

fn main() {
    let args = SPEC.parse_env();
    let jobs: usize = args.value_or("--jobs", 1);
    let mut ids: Vec<String> = args.positionals.clone();
    if ids.is_empty() {
        ids = pl_itc99::catalog()
            .iter()
            .map(|b| b.id.to_string())
            .collect();
    }
    // Validate every id up front so a typo fails fast, before any
    // (multi-second) analysis work is scattered.
    let benches: Vec<pl_itc99::Benchmark> = ids
        .iter()
        .map(|id| {
            pl_itc99::by_id(id).unwrap_or_else(|| {
                eprintln!("error: unknown benchmark {id}\n");
                eprintln!("{}", SPEC.help());
                std::process::exit(2);
            })
        })
        .collect();
    println!(
        "{:<5} {:>6} {:>6} | {:>22} | {:>17} | {:>14} | {:>10}",
        "bench",
        "gates",
        "pairs",
        "support size 1/2/3",
        "coverage lo/md/hi",
        "gap min/avg/max",
        "cost med"
    );
    println!("{}", "-".repeat(98));
    for line in scatter_gather(jobs, &benches, |_, b| analyze(b)) {
        println!("{line}");
    }
    println!(
        "\nsupport size: how many of the LUT4's pins the trigger watches;\n\
         gap = Mmax − Tmax (arrival-level slack the trigger can exploit);\n\
         cost = Equation 1 (%coverage × Mmax/Tmax), median over pairs."
    );
}
