//! Regenerates the paper's Table 1 (master/trigger truth tables for the
//! full-adder carry-out) and Table 2 (cube-list trigger determination).

use pl_boolfn::{isop, TruthTable};
use pl_core::trigger::{search_triggers, trigger_cover_from_cubes};

fn main() {
    // Master: carry-out of a full adder, c(a+b) + ab, vars (a, b, c).
    let master = TruthTable::from_fn(3, |m| {
        let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
        (c && (a || b)) || (a && b)
    });
    // Arrival times: a, b early; carry-in c late (the adder situation).
    let arrivals = [1u32, 1, 3];
    let cands = search_triggers(&master, &arrivals);
    let best = cands
        .iter()
        .find(|c| c.support == 0b011)
        .expect("the {a,b} subset is always searched");

    println!("Table 1 — Truth Tables for Master and Trigger Functions");
    println!("master  = c(a+b) + ab      trigger = ab + a'b'  (support {{a, b}})\n");
    println!("  a b c | Master | Trigger");
    println!("  ------+--------+--------");
    for m in 0..8u32 {
        // The paper lists rows in (a b c) binary order, a leftmost.
        let (a, b, c) = (m >> 2 & 1, m >> 1 & 1, m & 1);
        let master_val = u8::from(master.eval(a | (b << 1) | (c << 2)));
        let trig_val = u8::from(best.table.eval(a | (b << 1)));
        println!("  {a} {b} {c} |   {master_val}    |   {trig_val}");
    }
    println!(
        "\ncoverage = {:.0}%  (paper: 4/8 = 50%)",
        best.coverage * 100.0
    );
    println!(
        "cost     = coverage × Mmax/Tmax = {:.2} × {}/{} = {:.2}\n",
        best.coverage,
        best.m_max,
        best.t_max,
        best.cost()
    );

    println!("Table 2 — Determination of Candidate Trigger Functions");
    let f_on = isop(&master, &master);
    let neg = !master;
    let f_off = isop(&neg, &neg);
    println!("  f_ON  = {f_on}");
    println!("  f_OFF = {f_off}\n");
    println!("  Cube | Output | {{a,b}} Coverage | In Trigger");
    println!("  -----+--------+----------------+-----------");
    let subset = 0b011;
    for (list, out) in [(&f_off, 0u8), (&f_on, 1u8)] {
        for cube in list {
            let within = cube.support_within(subset);
            let cov = if within { cube.covered_count() } else { 0 };
            println!(
                "  {cube}  |   {out}    | {cov:>14} | {}",
                if within { "yes" } else { "no" }
            );
        }
    }
    let (cover, covered) = trigger_cover_from_cubes(&f_on, &f_off, subset);
    println!(
        "\n  f_trig = {cover}   covering {covered}/8 minterms = {:.0}%",
        covered as f64 / 8.0 * 100.0
    );
    println!("  (paper: f_ON_trig = {{00-, 11-}}, coverage 50%)");
}
