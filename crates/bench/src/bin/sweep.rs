//! Cost-threshold sweep: the paper's §4 area/delay trade-off
//! ("thresholding the cost function allows for a tradeoff in area versus
//! delay of a PL circuit").
//!
//! ```text
//! sweep [--bench bXX] [--vectors N] [--seed S] [--jobs J]
//! ```
//!
//! Prints one CSV-ish row per threshold: threshold, EE pairs, % area
//! increase, average delay, % delay decrease. `--jobs J` runs the
//! per-threshold flows on J worker threads (`0` = one per core); rows are
//! gathered deterministically so the output is identical at any J.

use pl_bench::{run_flow, FlowOptions, FlowResult};
use pl_core::ee::EeOptions;
use pl_sim::parallel::scatter_gather;

const THRESHOLDS: [f64; 8] = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

fn main() {
    let mut bench_id = String::from("b07");
    let mut vectors = 100usize;
    let mut seed = 0xDA7E_2002u64;
    let mut jobs = 1usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                bench_id = args
                    .get(i + 1)
                    .unwrap_or_else(|| usage("--bench needs an id"))
                    .clone();
                i += 2;
            }
            "--vectors" => {
                vectors = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--vectors needs a number"));
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
                i += 2;
            }
            "--jobs" => {
                jobs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a number (0 = auto)"));
                i += 2;
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }

    let Some(bench) = pl_itc99::by_id(&bench_id) else {
        usage(&format!("unknown benchmark {bench_id}"));
    };
    println!("# threshold sweep for {} — {}", bench.id, bench.description);
    println!(
        "{:>9} {:>9} {:>8} {:>12} {:>8}",
        "threshold", "ee_pairs", "%area", "avg_delay_ns", "%delay"
    );

    // One flow per threshold; index 0 is the threshold=∞ baseline (no EE
    // at all), whose delay anchors the %delay column. The fan-out is
    // embarrassingly parallel and each flow is unchanged, so rows are
    // bit-identical to the sequential sweep.
    let thresholds: Vec<f64> = std::iter::once(f64::INFINITY).chain(THRESHOLDS).collect();
    let results: Vec<Result<FlowResult, String>> = scatter_gather(jobs, &thresholds, |_, &t| {
        let opts = FlowOptions {
            vectors,
            seed,
            ee: EeOptions {
                cost_threshold: t,
                ..EeOptions::default()
            },
            verify: false,
            ..FlowOptions::default()
        };
        run_flow(&bench, &opts).map_err(|e| format!("threshold {t}: FAILED: {e}"))
    });

    let mut base_delay = None;
    for (&t, result) in thresholds.iter().zip(results) {
        match result {
            Ok(r) => {
                let base = *base_delay.get_or_insert(r.delay_ee);
                if t.is_infinite() {
                    println!(
                        "{:>9} {:>9} {:>7.0}% {:>12.1} {:>7.1}%",
                        "inf",
                        r.ee_gates,
                        r.area_increase_pct(),
                        r.delay_ee,
                        0.0
                    );
                } else {
                    let decrease = 100.0 * (base - r.delay_ee) / base;
                    println!(
                        "{t:>9.2} {:>9} {:>7.0}% {:>12.1} {decrease:>7.1}%",
                        r.ee_gates,
                        r.area_increase_pct(),
                        r.delay_ee,
                    );
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: sweep [--bench bXX] [--vectors N] [--seed S] [--jobs J]");
    std::process::exit(2);
}
