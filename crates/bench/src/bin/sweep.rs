//! Cost-threshold sweep: the paper's §4 area/delay trade-off
//! ("thresholding the cost function allows for a tradeoff in area versus
//! delay of a PL circuit").
//!
//! Prints one CSV-ish row per threshold: threshold, EE pairs, % area
//! increase, average delay, % delay decrease. `--jobs J` runs the
//! per-threshold flows on J worker threads (`0` = one per core); rows are
//! gathered deterministically so the output is identical at any J. Run
//! with `--help` for the full flag list.

use pl_bench::{run_flow, FlowOptions, FlowResult};
use pl_core::ee::EeOptions;
use pl_flow::cli::{CliSpec, OptSpec};
use pl_sim::parallel::scatter_gather;

const THRESHOLDS: [f64; 8] = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

const SPEC: CliSpec = CliSpec {
    bin: "sweep",
    about: "EE cost-threshold sweep (area/delay trade-off, paper section 4)",
    positional: None,
    options: &[
        OptSpec {
            long: "--bench",
            value: Some("bXX"),
            help: "benchmark to sweep (default b07)",
        },
        OptSpec {
            long: "--vectors",
            value: Some("N"),
            help: "random vectors per flow (default 100)",
        },
        OptSpec {
            long: "--seed",
            value: Some("S"),
            help: "vector-generation seed",
        },
        OptSpec {
            long: "--jobs",
            value: Some("J"),
            help: "worker threads (0 = one per core)",
        },
    ],
};

fn main() {
    let args = SPEC.parse_env();
    let bench_id: String = args.value_or("--bench", String::from("b07"));
    let vectors: usize = args.value_or("--vectors", 100);
    let seed: u64 = args.value_or("--seed", 0xDA7E_2002);
    let jobs: usize = args.value_or("--jobs", 1);

    let Some(bench) = pl_itc99::by_id(&bench_id) else {
        eprintln!("error: unknown benchmark {bench_id}\n");
        eprintln!("{}", SPEC.help());
        std::process::exit(2);
    };
    println!("# threshold sweep for {} — {}", bench.id, bench.description);
    println!(
        "{:>9} {:>9} {:>8} {:>12} {:>8}",
        "threshold", "ee_pairs", "%area", "avg_delay_ns", "%delay"
    );

    // One flow per threshold; index 0 is the threshold=∞ baseline (no EE
    // at all), whose delay anchors the %delay column. The fan-out is
    // embarrassingly parallel and each flow is unchanged, so rows are
    // bit-identical to the sequential sweep.
    let thresholds: Vec<f64> = std::iter::once(f64::INFINITY).chain(THRESHOLDS).collect();
    let results: Vec<Result<FlowResult, String>> = scatter_gather(jobs, &thresholds, |_, &t| {
        let opts = FlowOptions {
            vectors,
            seed,
            ee: EeOptions {
                cost_threshold: t,
                ..EeOptions::default()
            },
            verify: false,
            ..FlowOptions::default()
        };
        run_flow(&bench, &opts).map_err(|e| format!("threshold {t}: FAILED: {e}"))
    });

    let mut base_delay = None;
    for (&t, result) in thresholds.iter().zip(results) {
        match result {
            Ok(r) => {
                let base = *base_delay.get_or_insert(r.delay_ee);
                if t.is_infinite() {
                    println!(
                        "{:>9} {:>9} {:>7.0}% {:>12.1} {:>7.1}%",
                        "inf",
                        r.ee_gates,
                        r.area_increase_pct(),
                        r.delay_ee,
                        0.0
                    );
                } else {
                    let decrease = 100.0 * (base - r.delay_ee) / base;
                    println!(
                        "{t:>9.2} {:>9} {:>7.0}% {:>12.1} {decrease:>7.1}%",
                        r.ee_gates,
                        r.area_increase_pct(),
                        r.delay_ee,
                    );
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}
