//! Regenerates the paper's Table 3: EE vs non-EE statistics for b01–b15.
//!
//! ```text
//! table3 [--vectors N] [--seed S] [--threshold T] [--only bXX[,bYY..]]
//!        [--jobs J] [--no-verify]
//! ```
//!
//! `--jobs J` scatters the benchmarks across J worker threads (`0` = one
//! per available core) via `pl_sim::parallel`; every row is bit-identical
//! to the sequential run and rows always print in suite order.

use pl_bench::{format_table3, run_flows_parallel, FlowOptions};
use pl_core::ee::EeOptions;

fn main() {
    let mut opts = FlowOptions::default();
    let mut only: Option<Vec<String>> = None;
    let mut jobs = 1usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--vectors" => {
                opts.vectors = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--vectors needs a number"));
                i += 2;
            }
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
                i += 2;
            }
            "--threshold" => {
                let t: f64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threshold needs a number"));
                opts.ee = EeOptions {
                    cost_threshold: t,
                    ..EeOptions::default()
                };
                i += 2;
            }
            "--only" => {
                only = Some(
                    args.get(i + 1)
                        .unwrap_or_else(|| usage("--only needs ids"))
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
                i += 2;
            }
            "--jobs" => {
                jobs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a number (0 = auto)"));
                i += 2;
            }
            "--no-verify" => {
                opts.verify = false;
                i += 1;
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }

    println!("Table 3 — Experimental Results Comparing the Use of EE in PL Synthesis");
    println!(
        "({} random vectors per circuit, seed {:#x}, cost threshold {})\n",
        opts.vectors, opts.seed, opts.ee.cost_threshold
    );

    let benches: Vec<_> = pl_itc99::catalog()
        .into_iter()
        .filter(|b| {
            only.as_ref()
                .is_none_or(|ids| ids.iter().any(|id| id == b.id))
        })
        .collect();
    let workers = pl_sim::parallel::effective_jobs(jobs, benches.len());
    eprintln!(
        "running {} benchmark(s) across {workers} worker(s) ...",
        benches.len()
    );
    match run_flows_parallel(&benches, &opts, jobs) {
        Ok(rows) => println!("{}", format_table3(&rows)),
        Err(e) => {
            eprintln!("FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: table3 [--vectors N] [--seed S] [--threshold T] [--only bXX,bYY] [--jobs J] [--no-verify]"
    );
    std::process::exit(2);
}
