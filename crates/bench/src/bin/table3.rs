//! Regenerates the paper's Table 3: EE vs non-EE statistics for b01–b15.
//!
//! `--jobs J` scatters the benchmarks across J worker threads (`0` = one
//! per available core) via `pl_sim::parallel`; every row is bit-identical
//! to the sequential run and rows always print in suite order. Run with
//! `--help` for the full flag list.

use pl_bench::{format_table3, run_flows_parallel, FlowOptions};
use pl_core::ee::EeOptions;
use pl_flow::cli::{CliSpec, OptSpec};

const SPEC: CliSpec = CliSpec {
    bin: "table3",
    about: "regenerate the paper's Table 3 (EE vs non-EE, b01-b15)",
    positional: None,
    options: &[
        OptSpec {
            long: "--vectors",
            value: Some("N"),
            help: "random vectors per circuit (default 100)",
        },
        OptSpec {
            long: "--seed",
            value: Some("S"),
            help: "vector-generation seed",
        },
        OptSpec {
            long: "--threshold",
            value: Some("T"),
            help: "EE cost threshold (Equation 1)",
        },
        OptSpec {
            long: "--only",
            value: Some("bXX,bYY"),
            help: "run only the listed benchmark ids",
        },
        OptSpec {
            long: "--jobs",
            value: Some("J"),
            help: "worker threads (0 = one per core)",
        },
        OptSpec {
            long: "--no-verify",
            value: None,
            help: "skip the synchronous cross-check",
        },
    ],
};

fn main() {
    let args = SPEC.parse_env();
    let mut opts = FlowOptions::default();
    opts.vectors = args.value_or("--vectors", opts.vectors);
    opts.seed = args.value_or("--seed", opts.seed);
    if let Some(t) = args.value_opt::<f64>("--threshold") {
        opts.ee = EeOptions {
            cost_threshold: t,
            ..EeOptions::default()
        };
    }
    opts.verify = !args.flag("--no-verify");
    let jobs: usize = args.value_or("--jobs", 1);
    let only: Option<Vec<String>> = args
        .get("--only")
        .map(|ids| ids.split(',').map(str::to_string).collect());
    // Validate up front: a typo'd id must fail loudly, not produce an
    // empty table with exit 0.
    if let Some(ids) = &only {
        for id in ids {
            if pl_itc99::by_id(id).is_none() {
                eprintln!("error: unknown benchmark {id}\n");
                eprintln!("{}", SPEC.help());
                std::process::exit(2);
            }
        }
    }

    println!("Table 3 — Experimental Results Comparing the Use of EE in PL Synthesis");
    println!(
        "({} random vectors per circuit, seed {:#x}, cost threshold {})\n",
        opts.vectors, opts.seed, opts.ee.cost_threshold
    );

    let benches: Vec<_> = pl_itc99::catalog()
        .into_iter()
        .filter(|b| {
            only.as_ref()
                .is_none_or(|ids| ids.iter().any(|id| id == b.id))
        })
        .collect();
    let workers = pl_sim::parallel::effective_jobs(jobs, benches.len());
    eprintln!(
        "running {} benchmark(s) across {workers} worker(s) ...",
        benches.len()
    );
    match run_flows_parallel(&benches, &opts, jobs) {
        Ok(rows) => println!("{}", format_table3(&rows)),
        Err(e) => {
            eprintln!("FAILED: {e}");
            std::process::exit(1);
        }
    }
}
