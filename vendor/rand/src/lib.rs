//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crates.io registry, so this tiny
//! vendored crate provides the subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is SplitMix64 — statistically fine for
//! test-vector generation and fully deterministic, but **not** the real
//! `StdRng` (ChaCha12): streams differ from upstream `rand` for the same
//! seed. Everything in this workspace that depends on the stream captures
//! its own goldens, so only self-consistency matters.

#![forbid(unsafe_code)]

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that a [`Rng`] can sample uniformly over their full range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// The random-number-generator interface.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly over the type's full range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, the conventional u64→f64 construction.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high - low) as u64;
                low + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: SplitMix64's output is well mixed everywhere,
        // but the top bits are conventionally preferred.
        rng.next_u64() >> 63 == 1
    }
}

impl SampleUniform for i32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let span = (i64::from(high) - i64::from(low)) as u64;
        (i64::from(low) + (rng.next_u64() % span) as i64) as i32
    }
}

impl SampleUniform for i64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let span = (high as i128 - low as i128) as u64;
        (low as i128 + i128::from(rng.next_u64() % span)) as i64
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bool_and_ranges_are_plausibly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((350..=650).contains(&trues), "bool bias: {trues}/1000");
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }
}
