//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates.io registry, so this vendored
//! crate re-implements the narrow `proptest 1.x` surface the workspace's
//! property tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), [`Strategy`] with `prop_map` /
//! `prop_flat_map`, `any::<T>()`, integer-range strategies, tuple
//! strategies, [`collection::vec`], and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports the generated inputs via the
//!   panic message only (the harness prints the failing values because the
//!   assertion macros format them).
//! * **Deterministic** — the RNG is seeded from the test function's name,
//!   so a failure always reproduces.
//! * `prop_assume!` rejections retry (bounded) instead of tracking global
//!   rejection budgets.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic SplitMix64 test RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary label (the test name).
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, so every test gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. The stub has no shrinking, so a strategy is just a
/// sampling function plus the `prop_map`/`prop_flat_map` combinators.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws a fully random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// The canonical full-range strategy of `T` (`any::<u64>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything convertible to a size range for [`vec`].
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `sizes` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = sizes.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests. See the crate docs for the supported grammar:
/// an optional `#![proptest_config(expr)]` followed by `#[test] fn
/// name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                // prop_assume! rejections retry with fresh inputs, bounded
                // so a starved assumption fails loudly instead of spinning.
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(100).max(1000),
                        "prop_assume! rejected too many cases ({} accepted of {} wanted)",
                        accepted,
                        config.cases
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let ran: bool = (|| -> bool { { $body } true })();
                    if ran {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 5usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        /// Mapping and assumption filtering compose.
        #[test]
        fn map_and_assume(v in crate::collection::vec(0u8..10, 1..5)) {
            prop_assume!(!v.is_empty());
            let doubled: Vec<u16> = v.iter().map(|&b| u16::from(b) * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
            prop_assert!(doubled.iter().all(|&d| d < 20));
        }

        /// Flat-mapped strategies see the upstream value.
        #[test]
        fn flat_map_dependent(pair in (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(crate::any::<bool>(), n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn deterministic_streams_per_label() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
