//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a crates.io registry, so this vendored
//! crate provides the benchmarking surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], benchmark groups with `sample_size`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: every benchmark is auto-calibrated to a per-sample
//! batch that runs for roughly [`TARGET_SAMPLE`], then `samples` batches are
//! timed and the per-iteration mean/min/max of the batch means is printed:
//!
//! ```text
//! bench_name              time: [min 12.3 µs  mean 12.9 µs  max 13.8 µs]  (N samples)
//! ```
//!
//! Set `CRITERION_STUB_QUICK=1` to run one tiny sample per bench (CI smoke
//! mode). There are no HTML reports, statistics, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Per-sample calibration target.
pub const TARGET_SAMPLE: Duration = Duration::from_millis(40);

/// How a batched benchmark sizes its input batches (accepted for API
/// compatibility; the stub times every batch individually anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn quick_mode() -> bool {
    std::env::var_os("CRITERION_STUB_QUICK").is_some_and(|v| v != "0")
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 10 }
    }
}

impl Criterion {
    /// Runs one benchmark; `f` drives the supplied [`Bencher`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            samples,
        }
    }
}

/// A group of related benchmarks sharing a sample-size configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark within the group (`group/name` in the output).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// (per-iteration seconds) per timed sample.
    results: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine` by running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = calibrate(|| {
            std::hint::black_box(routine());
        });
        let samples = if quick_mode() { 1 } else { self.samples };
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.results
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Benchmarks `routine` on fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let samples = if quick_mode() { 1 } else { self.samples };
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.results.push(start.elapsed().as_secs_f64());
        }
    }

    fn report(&self, name: &str) {
        if self.results.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mean = self.results.iter().sum::<f64>() / self.results.len() as f64;
        let min = self.results.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.results.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{name:<50} time: [min {}  mean {}  max {}]  ({} samples)",
            human(min),
            human(mean),
            human(max),
            self.results.len()
        );
    }
}

/// Picks an iteration count whose batch takes roughly [`TARGET_SAMPLE`].
fn calibrate<F: FnMut()>(mut routine: F) -> u64 {
    if quick_mode() {
        return 1;
    }
    let start = Instant::now();
    routine();
    let once = start.elapsed().max(Duration::from_nanos(50));
    (TARGET_SAMPLE.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 1e7) as u64
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_STUB_QUICK", "1");
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
