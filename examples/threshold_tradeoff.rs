//! The paper's §4 observation: "thresholding the cost function allows for
//! a tradeoff in area versus delay of a PL circuit". This example sweeps
//! the Equation-1 cost threshold on one benchmark and prints the frontier.
//!
//! ```text
//! cargo run --release --example threshold_tradeoff [bXX]
//! ```

use pl_bench::{run_flow, FlowOptions};
use pl_core::ee::EeOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let id = std::env::args().nth(1).unwrap_or_else(|| "b04".to_string());
    let bench =
        pl_itc99::by_id(&id).ok_or_else(|| format!("unknown benchmark '{id}' (use b01..b15)"))?;
    println!(
        "area/delay trade-off for {} — {}\n",
        bench.id, bench.description
    );
    println!(
        "{:>10} | {:>8} {:>7} | {:>12} {:>8}",
        "threshold", "EE pairs", "%area", "avg delay ns", "%delay"
    );
    println!("{}", "-".repeat(56));

    let mut baseline = None;
    for t in [f64::INFINITY, 3.0, 2.0, 1.5, 1.0, 0.75, 0.5, 0.25, 0.0] {
        let opts = FlowOptions {
            vectors: 100,
            verify: false,
            ee: EeOptions {
                cost_threshold: t,
                ..EeOptions::default()
            },
            ..FlowOptions::default()
        };
        let row = run_flow(&bench, &opts)?;
        let base = *baseline.get_or_insert(row.delay_ee);
        let label = if t.is_infinite() {
            "no EE".to_string()
        } else {
            format!("{t:.2}")
        };
        println!(
            "{label:>10} | {:>8} {:>6.0}% | {:>12.1} {:>7.1}%",
            row.ee_gates,
            row.area_increase_pct(),
            row.delay_ee,
            100.0 * (base - row.delay_ee) / base,
        );
    }
    println!("\nLower thresholds implement more trigger pairs: more area, more speedup.");
    Ok(())
}
