//! The paper's motivating scenario: early evaluation on a ripple-carry
//! adder, where the carry chain makes late inputs the norm and the
//! generate/kill trigger (`ab + a'b'`, Table 1) fires half the time.
//!
//! ```text
//! cargo run --example adder_ee [width]
//! ```

use pl_boolfn::TruthTable;
use pl_core::ee::EeOptions;
use pl_core::trigger::search_triggers;
use pl_core::PlNetlist;
use pl_netlist::Netlist;
use pl_sim::{measure_latency, DelayModel};

fn ripple_adder(bits: usize) -> Netlist {
    let mut n = Netlist::new("rca");
    let a: Vec<_> = (0..bits).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..bits).map(|i| n.add_input(format!("b{i}"))).collect();
    let mut carry = n.add_const(false);
    for i in 0..bits {
        let sum_t = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
        let cry_t = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let s = n
            .add_lut(sum_t, vec![a[i], b[i], carry])
            .expect("adder cell arity is correct");
        let c = n
            .add_lut(cry_t, vec![a[i], b[i], carry])
            .expect("adder cell arity is correct");
        n.set_output(format!("s{i}"), s);
        carry = c;
    }
    n.set_output("cout", carry);
    n
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    // Show the paper's Table 1 derivation on the carry-out cell.
    let carry = TruthTable::from_fn(3, |m| {
        let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
        (c && (a || b)) || (a && b)
    });
    println!("carry-out cell c(a+b)+ab, carry-in arriving late:");
    for cand in search_triggers(&carry, &[1, 1, 4]) {
        println!(
            "  subset {:#05b}: coverage {:>3.0}%  Mmax/Tmax {}/{}  cost {:.2}",
            cand.support,
            cand.coverage * 100.0,
            cand.m_max,
            cand.t_max,
            cand.cost()
        );
    }

    // Build the full adder and measure with/without EE.
    let sync = ripple_adder(bits);
    let plain = PlNetlist::from_sync(&sync)?;
    let report = PlNetlist::from_sync(&sync)?.with_early_evaluation(&EeOptions::default());
    println!(
        "\n{bits}-bit ripple adder: {} PL gates, {} EE pairs (+{:.0}% area)",
        plain.num_logic_gates(),
        report.pairs().len(),
        report.area_increase() * 100.0
    );

    let delays = DelayModel::default();
    let (o1, base) = measure_latency(&plain, &delays, 200, 1)?;
    let (o2, fast) = measure_latency(report.netlist(), &delays, 200, 1)?;
    assert_eq!(o1, o2, "EE never changes results");
    println!("without EE: {base}");
    println!("with EE:    {fast}");
    println!(
        "average speedup {:.1}% — best-case vectors cut the carry ripple entirely \
         (min {:.1} vs {:.1} ns)",
        100.0 * (base.mean() - fast.mean()) / base.mean(),
        fast.min(),
        base.min(),
    );
    Ok(())
}
