//! Bring your own circuit: build a custom design with the RTL DSL, export
//! it as BLIF, run the EE flow, and inspect which gates got triggers.
//!
//! The circuit is a small packet classifier: a header field is matched
//! against two programmable ranges and a checksum is accumulated — a mix
//! of comparators (EE-friendly) and control.
//!
//! ```text
//! cargo run --example custom_circuit
//! ```

use phased_logic_ee::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = RtlModule::new("classifier");
    let hdr = m.input_word("hdr", 8);
    let lo0 = m.input_word("lo0", 8);
    let hi0 = m.input_word("hi0", 8);
    let lo1 = m.input_word("lo1", 8);
    let hi1 = m.input_word("hi1", 8);
    let valid = m.input_bit("valid");

    // Range matches.
    let ge0 = m.ge_u(&hdr, &lo0);
    let le0 = m.le_u(&hdr, &hi0);
    let in0 = m.and2(ge0, le0);
    let ge1 = m.ge_u(&hdr, &lo1);
    let le1 = m.le_u(&hdr, &hi1);
    let in1 = m.and2(ge1, le1);

    // Running checksum of accepted headers.
    let csum = m.reg_word("csum", 8, 0);
    let matched = m.or2(in0, in1);
    let take = m.and2(valid, matched);
    let sum = m.add(&csum.q(), &hdr);
    m.next_when(&csum, take, &sum);

    m.output_bit("match0", in0);
    m.output_bit("match1", in1);
    m.output_word("csum", &csum.q());

    let gates = m.elaborate()?;
    let mapped = map_to_lut4(&gates, &MapOptions::default())?;

    // Export the mapped design as BLIF for external tools.
    let blif = pl_netlist::blif::to_blif(&mapped)?;
    println!("--- mapped netlist (BLIF, first 12 lines) ---");
    for line in blif.lines().take(12) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", blif.lines().count());

    // EE flow with a per-gate report.
    let pl = PlNetlist::from_sync(&mapped)?;
    let levels = pl.arrival_levels();
    let max_level = levels.iter().max().copied().unwrap_or(0);
    println!(
        "PL netlist: {} gates, critical depth {max_level}",
        pl.num_logic_gates()
    );

    let report = pl.with_early_evaluation(&EeOptions::default());
    println!(
        "{} of {} compute gates got triggers (+{:.0}% area):",
        report.pairs().len(),
        report.examined(),
        report.area_increase() * 100.0
    );
    let mut by_cost: Vec<_> = report.pairs().to_vec();
    by_cost.sort_by(|a, b| b.cost().partial_cmp(&a.cost()).expect("finite costs"));
    for pair in by_cost.iter().take(8) {
        println!(
            "  {} ← trigger {} | pins {:#06b} coverage {:>3.0}% Mmax {} Tmax {} cost {:.2}",
            pair.master,
            pair.trigger,
            pair.candidate.support,
            pair.candidate.coverage * 100.0,
            pair.candidate.m_max,
            pair.candidate.t_max,
            pair.cost()
        );
    }

    // Verify + measure.
    let delays = DelayModel::default();
    let plain = PlNetlist::from_sync(&mapped)?;
    let vectors: Vec<Vec<bool>> = {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        (0..100)
            .map(|_| (0..mapped.inputs().len()).map(|_| rng.gen()).collect())
            .collect()
    };
    pl_sim::verify_equivalence(&mapped, report.netlist(), &delays, &vectors)?
        .map_err(|m| format!("equivalence failure: {m}"))?;
    let (_, base) = pl_sim::measure_latency(&plain, &delays, 100, 9)?;
    let (_, fast) = pl_sim::measure_latency(report.netlist(), &delays, 100, 9)?;
    println!("\nequivalence verified over {} vectors", vectors.len());
    println!("latency without EE: {base}");
    println!("latency with EE:    {fast}");
    Ok(())
}
