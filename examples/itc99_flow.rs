//! Run one ITC99 benchmark through the complete reproduction flow and
//! print its Table 3 row plus flow diagnostics.
//!
//! ```text
//! cargo run --release --example itc99_flow [bXX] [vectors]
//! ```

use pl_bench::{format_table3, run_flow, FlowOptions};
use pl_core::PlNetlist;
use pl_techmap::{map_with_report, MapOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let id = std::env::args().nth(1).unwrap_or_else(|| "b07".to_string());
    let vectors: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let bench =
        pl_itc99::by_id(&id).ok_or_else(|| format!("unknown benchmark '{id}' (use b01..b15)"))?;

    println!("{} — {}\n", bench.id, bench.description);

    // Stage-by-stage diagnostics.
    let module = (bench.build)();
    let gates = module.elaborate()?;
    println!("RTL:       {}", pl_netlist::analyze::stats(&gates)?);
    let report = map_with_report(&gates, &MapOptions::default())?;
    println!(
        "LUT4 map:  {} LUTs (from {}), depth {}",
        report.luts_after, report.luts_before, report.depth
    );
    let pl = PlNetlist::from_sync(&report.netlist)?;
    println!(
        "PL map:    {} PL gates, {} arcs ({} feedbacks)",
        pl.num_logic_gates(),
        pl.arcs().len(),
        pl.num_ack_arcs()
    );
    pl_core::marked::check_liveness(&pl)?;
    println!("checks:    liveness ok");

    // The Table 3 row.
    let row = run_flow(
        &bench,
        &FlowOptions {
            vectors,
            ..FlowOptions::default()
        },
    )?;
    println!("\n{}", format_table3(&[row]));
    Ok(())
}
