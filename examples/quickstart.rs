//! Quickstart: the full phased-logic early-evaluation flow on a small
//! accumulator circuit.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use phased_logic_ee::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a synchronous circuit at RTL: a 6-bit accumulator that
    //    saturates instead of wrapping.
    let mut m = RtlModule::new("sat_acc");
    let x = m.input_word("x", 6);
    let en = m.input_bit("en");
    let acc = m.reg_word("acc", 6, 0);
    let zero = m.const_bit(false);
    let (sum, carry) = m.add_carry(&acc.q(), &x, zero);
    let maxed = m.const_word(6, 63);
    let next = m.mux_w(carry, &sum, &maxed);
    m.next_when(&acc, en, &next);
    m.output_word("acc", &acc.q());
    let gates = m.elaborate()?;
    println!("RTL elaborated: {}", pl_netlist::analyze::stats(&gates)?);

    // 2. Technology-map to LUT4s (the paper's PL gate function block).
    let mapped = map_to_lut4(&gates, &MapOptions::default())?;
    println!("LUT4 mapped:    {}", pl_netlist::analyze::stats(&mapped)?);

    // 3. Map to phased logic: every LUT/flip-flop becomes a self-timed PL
    //    gate, wires become marked-graph arcs, feedbacks keep it live+safe.
    let pl = PlNetlist::from_sync(&mapped)?;
    pl_core::marked::check_liveness(&pl)?;
    pl_core::marked::check_safety(&pl)?;
    println!(
        "Phased logic:   {} PL gates, {} feedback arcs (live, safe)",
        pl.num_logic_gates(),
        pl.num_ack_arcs()
    );

    // 4. Add generalized early evaluation (DATE 2002).
    let baseline = pl.clone();
    let report = pl.with_early_evaluation(&EeOptions::default());
    println!(
        "Early eval:     {} master/trigger pairs (+{:.0}% area)",
        report.pairs().len(),
        report.area_increase() * 100.0
    );
    for pair in report.pairs().iter().take(3) {
        println!(
            "  master {} gets trigger {} on pin set {:#06b} (coverage {:.0}%, cost {:.2})",
            pair.master,
            pair.trigger,
            pair.candidate.support,
            pair.candidate.coverage * 100.0,
            pair.cost()
        );
    }

    // 5. Measure: average stable-input→stable-output latency, 100 random
    //    vectors (the paper's Table 3 metric).
    let delays = DelayModel::default();
    let (out_a, plain) = pl_sim::measure_latency(&baseline, &delays, 100, 42)?;
    let (out_b, eed) = pl_sim::measure_latency(report.netlist(), &delays, 100, 42)?;
    assert_eq!(out_a, out_b, "early evaluation must never change outputs");
    println!("\nwithout EE: {plain}");
    println!("with EE:    {eed}");
    println!(
        "speedup:    {:.1}%",
        100.0 * (plain.mean() - eed.mean()) / plain.mean()
    );
    Ok(())
}
