//! Exact reproductions of the paper's worked examples: Table 1, Table 2 and
//! Equation 1, plus the structural claims of §2–3.

use pl_boolfn::{isop, support_subsets, CubeList, TruthTable};
use pl_core::trigger::{best_trigger, search_triggers, trigger_cover_from_cubes};
use pl_core::{LedrSignal, Phase};

/// Full-adder carry-out, the paper's running example (a=var0, b=var1,
/// c=var2 = carry-in).
fn carry_out() -> TruthTable {
    TruthTable::from_fn(3, |m| {
        let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
        (c && (a || b)) || (a && b)
    })
}

#[test]
fn table1_master_column() {
    // Paper Table 1, master column for rows abc = 000..111 (a is MSB).
    let expected = [0, 0, 0, 1, 0, 1, 1, 1];
    let f = carry_out();
    for (row, &want) in expected.iter().enumerate() {
        let (a, b, c) = (row >> 2 & 1, row >> 1 & 1, row & 1);
        let idx = (a | (b << 1) | (c << 2)) as u32;
        assert_eq!(u8::from(f.eval(idx)), want, "row abc={a}{b}{c}");
    }
}

#[test]
fn table1_trigger_column() {
    // Paper Table 1, trigger column: 1,1,0,0,0,0,1,1 (= ab + a'b').
    let expected = [1, 1, 0, 0, 0, 0, 1, 1];
    let cands = search_triggers(&carry_out(), &[1, 1, 3]);
    let trig = cands
        .iter()
        .find(|c| c.support == 0b011)
        .expect("subset {a,b}");
    for (row, &want) in expected.iter().enumerate() {
        let (a, b) = (row >> 2 & 1, row >> 1 & 1);
        let idx = (a | (b << 1)) as u32;
        assert_eq!(u8::from(trig.table.eval(idx)), want, "row {row}");
    }
    // "an overall coverage of 4/8 = 50% is computed"
    assert!((trig.coverage - 0.5).abs() < 1e-12);
}

#[test]
fn table2_cube_list_procedure() {
    // The paper's cube lists for the carry function.
    let f_on = CubeList::parse(&["11-", "1-1", "-11"]).unwrap();
    let f_off = CubeList::parse(&["00-", "010", "100"]).unwrap();
    // Verify they really are covers of the master's ON/OFF sets.
    let f = carry_out();
    assert_eq!(f_on.to_truth_table(), f);
    assert_eq!(f_off.to_truth_table(), !f);
    // "Since 2 cubes depend only upon master inputs a and b and each of
    //  those two cubes covers [2] of the 8 possible outputs ... a coverage
    //  of 50% is computed for the trigger function f_trig = ab + a'b'."
    let (cover, covered) = trigger_cover_from_cubes(&f_on, &f_off, 0b011);
    assert_eq!(covered, 4);
    assert_eq!(covered as f64 / 8.0, 0.5);
    // "f_ON_trig = {00-, 11-}"
    let mut cubes: Vec<String> = cover.iter().map(|c| c.to_string()).collect();
    cubes.sort();
    assert_eq!(cubes, vec!["00-", "11-"]);
}

#[test]
fn table2_per_cube_coverage_column() {
    // Paper Table 2's coverage column: 00- → 2, 010 → 0, 100 → 0,
    // 11- → 2, 1-1 → 0, -11 → 0.
    let rows = [
        ("00-", 2u64),
        ("010", 0),
        ("100", 0),
        ("11-", 2),
        ("1-1", 0),
        ("-11", 0),
    ];
    for (cube_str, want) in rows {
        let cube = pl_boolfn::Cube::parse(cube_str).unwrap();
        let contributes = cube.support_within(0b011);
        let got = if contributes { cube.covered_count() } else { 0 };
        assert_eq!(got, want, "cube {cube_str}");
    }
}

#[test]
fn equation1_cost() {
    // Cost = %Coverage × Mmax / Tmax. With the carry-in at level 3 and
    // a, b at level 1: cost({a,b}) = 0.5 × 3/1 = 1.5.
    let best = best_trigger(&carry_out(), &[1, 1, 3]).expect("adder has a trigger");
    assert_eq!(best.support, 0b011);
    assert!((best.cost() - 1.5).abs() < 1e-12);
    // Flipping the arrivals makes {a,b} unattractive (cost weighting works:
    // "a large coverage ... may depend on slowly arriving signals").
    let cands = search_triggers(&carry_out(), &[4, 4, 1]);
    let ab = cands.iter().find(|c| c.support == 0b011).unwrap();
    let bc = cands.iter().find(|c| c.support == 0b110);
    assert!(!ab.offers_speedup());
    if let Some(bc) = bc {
        assert!(bc.t_max <= ab.t_max || bc.cost() <= ab.cost());
    }
}

#[test]
fn fourteen_support_sets() {
    // "We search over all 14 possible support sets of 3 or fewer variables"
    assert_eq!(support_subsets(0b1111, 3).count(), 14);
}

#[test]
fn ledr_phase_alternation() {
    // §2: "Each data token has a phase that is either even or odd" and the
    // phase is p = v ⊕ t.
    let mut s = LedrSignal::with_phase(false, Phase::Even);
    for i in 0..10 {
        let v = i % 3 == 0;
        let next = s.next_token(v);
        assert_eq!(next.phase(), s.phase().toggled());
        assert_eq!(next.value(), v);
        assert_eq!(next.phase().bit(), next.v() ^ next.t());
        s = next;
    }
}

#[test]
fn isop_reproduces_paper_on_set() {
    // Our ISOP of the carry function matches the paper's f_ON cover
    // {11-, 1-1, -11} up to cube ordering.
    let f = carry_out();
    let mut got: Vec<String> = isop(&f, &f).iter().map(|c| c.to_string()).collect();
    got.sort();
    assert_eq!(got, vec!["-11", "1-1", "11-"]);
}

#[test]
fn trigger_is_sound_and_complete_for_the_carry() {
    // trigger=1 exactly when the {a,b} assignment forces the master —
    // completeness distinguishes the exact method from cube filtering.
    let f = carry_out();
    let cands = search_triggers(&f, &[1, 1, 3]);
    let trig = cands.iter().find(|c| c.support == 0b011).unwrap();
    for ab in 0..4u32 {
        let fires = trig.table.eval(ab);
        let forced = f.forced_value(0b011, ab).is_some();
        assert_eq!(fires, forced, "assignment ab={ab:02b}");
    }
}
