//! Property-based tests of the checkpoint wire format
//! (`pl_sim::checkpoint::wire`): encode→decode identity on mid-stream
//! snapshots of random circuits, and typed rejection — never a panic —
//! under random corruption (byte flips, truncation, garbage, wrong
//! delay model).

use pl_boolfn::TruthTable;
use pl_core::PlNetlist;
use pl_netlist::{Netlist, NodeId};
use pl_sim::{DelayModel, PlSimulator, SimCheckpoint, SimError};
use pl_techmap::{map_to_lut4, MapOptions};
use proptest::prelude::*;

/// IEEE CRC32 (reflected, polynomial `0xEDB8_8320`) — reimplemented
/// here because the wire module's helpers are `pub(crate)`. The
/// `crc32_check_value` test pins it to the standard check value, and
/// `roundtrip_is_identity` implicitly pins it to the encoder's CRC
/// (a mismatch would make every re-fixed frame fail decoding for the
/// wrong reason).
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[test]
fn crc32_check_value() {
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

/// Byte offsets of each section's length field (the u64 right after the
/// tag byte) in a pristine encoding, in wire order: HEADER, STATE,
/// QUEUE, ARCS, GATES, RECORDS.
fn section_len_offsets(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut pos = 12; // magic (8) + version (4)
    let end = bytes.len() - 4; // whole-file trailer CRC
    while pos < end {
        offsets.push(pos + 1);
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("8 bytes")) as usize;
        pos += 1 + 8 + len + 4; // tag + length + payload + section CRC
    }
    offsets
}

/// Recomputes the whole-file trailer CRC after a deliberate mutation,
/// so corrupted-length frames reach the section walk instead of being
/// caught by the file checksum.
fn refix_trailer(bytes: &mut [u8]) {
    let body = bytes.len() - 4;
    let crc = crc32(&bytes[..body]);
    bytes[body..].copy_from_slice(&crc.to_le_bytes());
}

/// Recipe for one random synchronous circuit (same scheme as
/// `prop_flow`, scaled down: the wire format is shape-generic, the
/// interesting variation is queue/record content, not netlist size).
#[derive(Debug, Clone)]
struct CircuitRecipe {
    num_inputs: usize,
    num_dffs: usize,
    luts: Vec<(u64, Vec<usize>)>,
    num_outputs: usize,
}

fn arb_recipe() -> impl Strategy<Value = CircuitRecipe> {
    (2usize..4, 1usize..3, 3usize..14, 1usize..4).prop_flat_map(
        |(num_inputs, num_dffs, num_luts, num_outputs)| {
            let lut = (
                any::<u64>(),
                proptest::collection::vec(any::<usize>(), 1..4),
            );
            proptest::collection::vec(lut, num_luts).prop_map(move |luts| CircuitRecipe {
                num_inputs,
                num_dffs,
                luts,
                num_outputs,
            })
        },
    )
}

fn build(recipe: &CircuitRecipe) -> Netlist {
    let mut n = Netlist::new("random");
    let mut pool: Vec<NodeId> = Vec::new();
    for i in 0..recipe.num_inputs {
        pool.push(n.add_input(format!("i{i}")));
    }
    let dffs: Vec<NodeId> = (0..recipe.num_dffs)
        .map(|k| n.add_dff(k % 2 == 0))
        .collect();
    pool.extend(&dffs);
    for (bits, fanins) in &recipe.luts {
        let srcs: Vec<NodeId> = fanins.iter().map(|&r| pool[r % pool.len()]).collect();
        let table = TruthTable::from_bits(srcs.len(), *bits);
        let id = n
            .add_lut(table, srcs)
            .expect("arity matches by construction");
        pool.push(id);
    }
    for (k, &d) in dffs.iter().enumerate() {
        let src = pool[(k * 7 + 3) % pool.len()];
        n.set_dff_input(d, src).expect("valid ids");
    }
    for k in 0..recipe.num_outputs {
        let src = pool[pool.len() - 1 - (k % pool.len().min(4))];
        n.set_output(format!("o{k}"), src);
    }
    n
}

/// Materializes a recipe into a PL netlist and snapshots a simulator
/// mid-stream: `n_feed` vectors injected without collecting rounds, so
/// the checkpoint holds a non-trivial event queue, in-flight tokens and
/// partially-filled output records — the hardest state to round-trip.
fn mid_stream(
    recipe: &CircuitRecipe,
    n_feed: usize,
    seed: u64,
) -> Option<(PlNetlist, SimCheckpoint)> {
    let sync = build(recipe);
    sync.validate().ok()?;
    let mapped = map_to_lut4(&sync, &MapOptions::default()).ok()?;
    let pl = PlNetlist::from_sync(&mapped).ok()?;
    let mut sim = PlSimulator::new(&pl, DelayModel::default()).ok()?;
    let n_inputs = pl.input_gates().len();
    for k in 0..n_feed {
        let v: Vec<bool> = (0..n_inputs)
            .map(|i| (seed >> ((k * 7 + i) % 64)) & 1 == 1)
            .collect();
        sim.feed_vector(&v).ok()?;
    }
    let ck = sim.snapshot();
    Some((pl, ck))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode→decode is the identity on mid-stream snapshots of random
    /// circuits (full dynamic state: queue, tokens, records, counters).
    #[test]
    fn roundtrip_is_identity(recipe in arb_recipe(), n_feed in 1usize..6, seed in any::<u64>()) {
        let built = mid_stream(&recipe, n_feed, seed);
        prop_assume!(built.is_some());
        let (pl, ck) = built.unwrap();
        let delays = DelayModel::default();
        let bytes = ck.to_bytes(&delays);
        let back = SimCheckpoint::from_bytes(&bytes, &pl, &delays)
            .expect("a pristine encoding must decode");
        prop_assert_eq!(back, ck);
    }

    /// Every single-byte flip anywhere in the encoding is rejected with
    /// a typed error — the whole-file CRC guarantees no flip can slip
    /// into a decoded checkpoint, and decoding never panics.
    #[test]
    fn any_byte_flip_is_rejected(
        recipe in arb_recipe(),
        seed in any::<u64>(),
        pos_sel in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let built = mid_stream(&recipe, 2, seed);
        prop_assume!(built.is_some());
        let (pl, ck) = built.unwrap();
        let delays = DelayModel::default();
        let mut bytes = ck.to_bytes(&delays);
        let pos = pos_sel % bytes.len();
        bytes[pos] ^= mask;
        prop_assert!(
            SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &delays).is_err(),
            "flip at byte {pos} (mask {mask:#04x}) decoded successfully"
        );
    }

    /// Every proper-prefix truncation is rejected (typed, no panic) —
    /// including cuts inside length fields and section frames.
    #[test]
    fn any_truncation_is_rejected(recipe in arb_recipe(), seed in any::<u64>(), len_sel in any::<usize>()) {
        let built = mid_stream(&recipe, 2, seed);
        prop_assume!(built.is_some());
        let (pl, ck) = built.unwrap();
        let delays = DelayModel::default();
        let bytes = ck.to_bytes(&delays);
        let len = len_sel % bytes.len(); // strictly shorter than the full encoding
        prop_assert!(
            SimCheckpoint::<bool>::from_bytes(&bytes[..len], &pl, &delays).is_err(),
            "truncation to {len} of {} bytes decoded successfully",
            bytes.len()
        );
    }

    /// Arbitrary garbage never decodes and never panics.
    #[test]
    fn garbage_never_decodes(recipe in arb_recipe(), bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let built = mid_stream(&recipe, 1, 1);
        prop_assume!(built.is_some());
        let (pl, _) = built.unwrap();
        let delays = DelayModel::default();
        prop_assert!(SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &delays).is_err());
    }

    /// A pristine encoding refuses to decode under a different delay
    /// model (the embedded digest binds the checkpoint to the quantized
    /// tick schedule it was taken under).
    #[test]
    fn delay_model_skew_is_rejected(recipe in arb_recipe(), seed in any::<u64>(), scale in 2u32..6) {
        let built = mid_stream(&recipe, 2, seed);
        prop_assume!(built.is_some());
        let (pl, ck) = built.unwrap();
        let delays = DelayModel::default();
        let bytes = ck.to_bytes(&delays);
        let skewed = delays.scaled(f64::from(scale));
        prop_assert!(SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &skewed).is_err());
    }

    /// An absurd section length — larger than the file, larger than any
    /// 32-bit usize, or `u64::MAX` — survives the whole-file CRC (the
    /// trailer is re-fixed after the mutation) and must be rejected as a
    /// typed truncation by the bound-before-narrow check in
    /// `read_section`, with no attempt to allocate or slice by the raw
    /// value. A bare `as usize` narrowing would instead wrap lengths
    /// like `1 << 32` to ~0 on 32-bit targets and mis-slice the walk.
    #[test]
    fn oversized_section_length_is_rejected(
        recipe in arb_recipe(),
        seed in any::<u64>(),
        section_sel in any::<usize>(),
        shape in 0usize..3,
    ) {
        let built = mid_stream(&recipe, 2, seed);
        prop_assume!(built.is_some());
        let (pl, ck) = built.unwrap();
        let delays = DelayModel::default();
        let mut bytes = ck.to_bytes(&delays);
        let offsets = section_len_offsets(&bytes);
        let at = offsets[section_sel % offsets.len()];
        let original =
            u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let huge = match shape {
            0 => u64::MAX,
            1 => (1u64 << 32) + original, // wraps back to `original` under 32-bit `as usize`
            _ => bytes.len() as u64,      // fits usize but overruns the buffer
        };
        bytes[at..at + 8].copy_from_slice(&huge.to_le_bytes());
        refix_trailer(&mut bytes);
        match SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &delays) {
            Err(SimError::CheckpointTruncated { .. }) => {}
            other => prop_assert!(
                false,
                "length {huge:#x} at offset {at}: expected CheckpointTruncated, got {other:?}"
            ),
        }
    }

    /// An absurd element count inside a section payload (here the queue
    /// event count, the first u64 of SEC_QUEUE) is rejected as typed
    /// out-of-range before any allocation sized by it — both the section
    /// CRC and the trailer are re-fixed so only the count check can
    /// catch it.
    #[test]
    fn oversized_queue_count_is_rejected(
        recipe in arb_recipe(),
        seed in any::<u64>(),
        excess in 1u64..=u64::MAX / 2,
    ) {
        let built = mid_stream(&recipe, 2, seed);
        prop_assume!(built.is_some());
        let (pl, ck) = built.unwrap();
        let delays = DelayModel::default();
        let mut bytes = ck.to_bytes(&delays);
        let offsets = section_len_offsets(&bytes);
        let len_at = offsets[2]; // QUEUE is the third section
        let len = u64::from_le_bytes(bytes[len_at..len_at + 8].try_into().expect("8 bytes"))
            as usize;
        let payload = len_at + 8..len_at + 8 + len;
        // Saturate the count far past what the payload could hold: the
        // in-bounds limit is at most `len / 21` events, so any value of
        // at least `len` is guaranteed out of range.
        let count_at = payload.start;
        bytes[count_at..count_at + 8]
            .copy_from_slice(&(len as u64).saturating_add(excess).to_le_bytes());
        let crc = crc32(&bytes[payload.clone()]);
        bytes[payload.end..payload.end + 4].copy_from_slice(&crc.to_le_bytes());
        refix_trailer(&mut bytes);
        match SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &delays) {
            Err(SimError::CheckpointOutOfRange { .. }) => {}
            other => prop_assert!(
                false,
                "queue count +{excess}: expected CheckpointOutOfRange, got {other:?}"
            ),
        }
    }
}
