//! Integration coverage for `pl_sim::trace` (VCD waveform export) and
//! `pl_sim::sync` (the cycle-accurate synchronous reference): a byte-exact
//! VCD golden check, VCD invariance across event-queue backends, and
//! synchronous cross-checks on a tiny free-running counter — so engine
//! refactors (like swapping the event-queue backend) cannot silently
//! change what these observability layers emit.

use pl_core::PlNetlist;
use pl_netlist::Netlist;
use pl_sim::{verify_equivalence, DelayModel, PlSimulator, QueueKind, SyncSimulator};

fn xor_netlist() -> (Netlist, PlNetlist) {
    let mut n = Netlist::new("golden");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let g = n.add_xor2(a, b).unwrap();
    n.set_output("y", g);
    let pl = PlNetlist::from_sync(&n).unwrap();
    (n, pl)
}

/// A 2-bit free-running counter (no primary inputs; DFF state advances
/// every vector) — tiny, stateful, and timing-sensitive.
fn counter_netlist() -> (Netlist, PlNetlist) {
    let mut n = Netlist::new("cnt2");
    let q0 = n.add_dff(false);
    let q1 = n.add_dff(false);
    let n0 = n.add_not(q0).unwrap();
    let t1 = n.add_xor2(q1, q0).unwrap();
    n.set_dff_input(q0, n0).unwrap();
    n.set_dff_input(q1, t1).unwrap();
    n.set_output("q0", q0);
    n.set_output("q1", q1);
    let pl = PlNetlist::from_sync(&n).unwrap();
    (n, pl)
}

fn traced_vcd(pl: &PlNetlist, queue: QueueKind) -> String {
    let mut sim = PlSimulator::with_queue(pl, DelayModel::default(), queue).unwrap();
    sim.enable_tracing();
    sim.run_vector(&[true, false]).unwrap();
    sim.run_vector(&[true, true]).unwrap();
    pl_sim::trace::to_vcd(pl, sim.trace(), "golden")
}

/// Byte-exact golden: the VCD emitted for a fixed XOR run is pinned in
/// full — header, variable declarations (arc naming and id codes), and
/// the timestamped change stream with its picosecond quantization.
#[test]
fn vcd_emission_matches_golden() {
    let (_, pl) = xor_netlist();
    let expected = "\
$date reproduction run $end
$version phased-logic-ee pl-sim $end
$timescale 1ps $end
$scope module golden $end
$var wire 1 ! data_g0_to_g2_p0 $end
$var wire 1 \" data_g1_to_g2_p1 $end
$var wire 1 # data_g2_to_g3_p0 $end
$upscope $end
$enddefinitions $end
$dumpvars
#300
1!
0\"
#3000
1#
#3900
1!
1\"
#6600
0#
";
    assert_eq!(
        traced_vcd(&pl, QueueKind::Heap),
        expected,
        "VCD emission drifted from the golden document"
    );
}

/// The recorded trace — and hence the emitted VCD — must be byte-identical
/// across event-queue backends: tracing observes token deliveries, and the
/// delivery schedule is backend-invariant.
#[test]
fn vcd_is_identical_across_queue_backends() {
    let (_, pl) = xor_netlist();
    assert_eq!(
        traced_vcd(&pl, QueueKind::Heap),
        traced_vcd(&pl, QueueKind::Ladder),
        "the queue backend leaked into the waveform trace"
    );
}

/// The synchronous reference on the tiny counter: cycle-by-cycle outputs
/// follow the 0,1,2,3 wraparound and the cycle counter tracks steps.
#[test]
fn sync_simulator_counts_cycles_on_counter() {
    let (sync, _) = counter_netlist();
    let mut sim = SyncSimulator::new(&sync).unwrap();
    assert_eq!(sim.cycles(), 0);
    let mut seq = Vec::new();
    for step in 1..=8u64 {
        let out = sim.step(&[]).unwrap();
        assert_eq!(out.len(), 2);
        seq.push((u8::from(out[1]) << 1) | u8::from(out[0]));
        assert_eq!(sim.cycles(), step);
    }
    assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
}

/// Cross-check: the phased-logic token game reproduces the synchronous
/// counter's output stream exactly, on either queue backend, both through
/// `verify_equivalence` and by direct lockstep comparison.
#[test]
fn sync_cross_check_on_counter_for_both_backends() {
    let (sync, pl) = counter_netlist();
    let vectors: Vec<Vec<bool>> = (0..10).map(|_| Vec::new()).collect();
    verify_equivalence(&sync, &pl, &DelayModel::default(), &vectors)
        .expect("simulates")
        .expect("PL diverged from the synchronous counter");

    for queue in [QueueKind::Heap, QueueKind::Ladder] {
        let mut ssim = SyncSimulator::new(&sync).unwrap();
        let mut psim = PlSimulator::with_queue(&pl, DelayModel::default(), queue).unwrap();
        for cycle in 0..10 {
            let so = ssim.step(&[]).unwrap();
            let po = psim.run_vector(&[]).unwrap().outputs;
            assert_eq!(so, po, "{queue}: counter diverged at cycle {cycle}");
        }
    }
}

/// `verify_equivalence` actually catches divergence: a deliberately wrong
/// reference (inverted output) must produce a `Mismatch` naming the first
/// bad vector, not silently pass.
#[test]
fn verify_equivalence_reports_mismatch() {
    let (_, pl) = xor_netlist();
    // A sync netlist computing XNOR instead of XOR.
    let mut wrong = Netlist::new("golden");
    let a = wrong.add_input("a");
    let b = wrong.add_input("b");
    let x = wrong.add_xor2(a, b).unwrap();
    let y = wrong.add_not(x).unwrap();
    wrong.set_output("y", y);

    let vectors = vec![vec![false, false], vec![true, false]];
    let mismatch = verify_equivalence(&wrong, &pl, &DelayModel::default(), &vectors)
        .expect("simulates")
        .expect_err("an inverted reference must be caught");
    assert_eq!(mismatch.vector, 0, "first diverging vector is reported");
    assert_ne!(mismatch.sync_outputs, mismatch.pl_outputs);
    let shown = mismatch.to_string();
    assert!(
        shown.contains("vector 0"),
        "display names the vector: {shown}"
    );
}
