//! The incremental-recompilation determinism contract, pinned.
//!
//! For any edit sequence, an [`EcoSession`] recompile must be
//! **bit-identical** to a from-scratch [`Pipeline::run`] on the edited
//! netlist: the mapped netlist, the phased graph, the EE twin and its
//! master/trigger pairs, the simulated outputs, and the per-vector
//! latency statistics. Only wall-clock and the trigger-cache hit/miss
//! counters are exempt (the cache is pure; its counters depend on
//! session history by design).
//!
//! Pinned over the whole ITC'99 catalog (plain and EE), scripted
//! multi-edit sequences, and random netlists under random edit sequences
//! — plus the ECO edge cases: cycle-creating rewires surface typed
//! errors (never hang), removing a primary-output driver is rejected,
//! constant-making table edits surface `PL0007` incrementally, and BLIF
//! undriven-net notes (`PL0009`) are re-derived rather than carried
//! stale.

use pl_flow::{
    random_netlist, CircuitSource, EcoEdit, EcoOutcome, EcoSession, FlowError, FlowOptions, Lcg,
    NodeRef, Pipeline, RandomSpec,
};
use pl_netlist::{Netlist, NetlistError, NodeId};

/// Flow options for the suite: small deterministic runs, verify on.
fn opts(ee: bool, vectors: usize) -> FlowOptions {
    FlowOptions {
        vectors,
        ee_enabled: ee,
        verify: true,
        ..FlowOptions::default()
    }
}

/// Scratch-compiles the session's current netlist with the session's own
/// pipeline and asserts every artifact is bit-identical to what the
/// session retained incrementally.
fn assert_matches_scratch(s: &EcoSession, ctx: &str) {
    let scratch = s
        .pipeline()
        .run(&CircuitSource::Netlist {
            name: s.name().to_string(),
            netlist: s.netlist().clone(),
        })
        .unwrap_or_else(|e| panic!("{ctx}: scratch compile failed: {e}"));
    let art = s.artifacts();
    assert_eq!(art.mapped, scratch.mapped, "{ctx}: mapped netlist diverged");
    assert_eq!(art.plain, scratch.plain, "{ctx}: phased graph diverged");
    assert_eq!(art.ee, scratch.ee, "{ctx}: EE netlist diverged");
    assert_eq!(art.pairs, scratch.pairs, "{ctx}: EE pairs diverged");
    assert_eq!(art.inputs, scratch.inputs, "{ctx}: input vectors diverged");
    assert_eq!(art.outputs, scratch.outputs, "{ctx}: outputs diverged");
    assert_eq!(
        art.stats_plain.per_vector, scratch.stats_plain.per_vector,
        "{ctx}: plain latencies diverged"
    );
    assert_eq!(
        art.stats_ee.as_ref().map(|s| &s.per_vector),
        scratch.stats_ee.as_ref().map(|s| &s.per_vector),
        "{ctx}: EE latencies diverged"
    );
    // EE selection statistics match; cache hit/miss counters are exempt
    // by design (they count session history, not results).
    let (a, b) = (&art.report.early_eval, &scratch.report.early_eval);
    assert_eq!(a.pairs, b.pairs, "{ctx}: EE pair count diverged");
    assert_eq!(a.examined, b.examined, "{ctx}: EE examined diverged");
    assert_eq!(a.area_increase, b.area_increase, "{ctx}: EE area diverged");
}

/// A live LUT near the outputs: the highest-id LUT reachable backwards
/// from the primary outputs and DFF data inputs (so a table edit is
/// guaranteed to change the mapped netlist's demand cone).
fn live_lut(n: &Netlist) -> NodeId {
    let mut stack: Vec<NodeId> = n.outputs().iter().map(|(_, id)| *id).collect();
    stack.extend(n.dffs().iter().copied());
    let mut seen = vec![false; n.len()];
    let mut best: Option<NodeId> = None;
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.index()], true) {
            continue;
        }
        if n.node(id).is_lut() && best.is_none_or(|b| id > b) {
            best = Some(id);
        }
        stack.extend(n.node(id).fanins());
    }
    best.expect("design has a live LUT")
}

/// Flips one row of a LUT's table (the all-zero-input row), returning the
/// spec bits for a `table:` edit of the same arity.
fn flipped_bits(n: &Netlist, lut: NodeId) -> u64 {
    n.node(lut).lut_table().expect("is a LUT").bits() ^ 1
}

/// One table-flip edit on every catalog design, plain and EE: the
/// incremental recompile must match scratch bit-for-bit, and with EE on,
/// the recompile must answer some trigger searches from the session
/// cache (untouched LUT classes re-verify from the memo).
#[test]
fn catalog_single_edit_matches_scratch_plain_and_ee() {
    for bench in pl_itc99::catalog() {
        // The two processor subsets dominate the suite's size; smaller
        // vector counts keep the debug-profile run proportionate.
        let vectors = if matches!(bench.id, "b14" | "b15") {
            2
        } else {
            6
        };
        for ee in [false, true] {
            let ctx = format!("{} (ee={ee})", bench.id);
            let pipeline = Pipeline::new(opts(ee, vectors));
            let mut s = pipeline
                .eco_session(&CircuitSource::catalog(bench.id).unwrap())
                .unwrap_or_else(|e| panic!("{ctx}: initial compile: {e}"));
            let lut = live_lut(s.netlist());
            let bits = flipped_bits(s.netlist(), lut);
            let out = s
                .apply_eco(&[EcoEdit::ReplaceTable {
                    node: NodeRef::Id(lut.index()),
                    bits,
                }])
                .unwrap_or_else(|e| panic!("{ctx}: eco failed: {e}"));
            assert!(out.eco.techmap_incremental, "{ctx}: plan was used");
            assert!(
                !out.eco.downstream_skipped,
                "{ctx}: a live-cone table flip must change the map"
            );
            assert!(out.eco.dirty_nodes > 0, "{ctx}: edit has a value cone");
            if ee {
                assert!(
                    out.eco.trigger_hits > 0,
                    "{ctx}: untouched LUT classes must re-verify from the cache"
                );
            }
            assert_matches_scratch(&s, &ctx);
        }
    }
}

/// A scripted multi-edit session: flip, splice in a new LUT (insert +
/// rewire), then retable again — applied batch by batch, checking
/// bit-identity with scratch after every recompile, cut reuse throughout.
#[test]
fn scripted_edit_sequence_stays_bit_identical_at_every_step() {
    for id in ["b04", "b09", "b11"] {
        let pipeline = Pipeline::new(opts(true, 6));
        let mut s = pipeline
            .eco_session(&CircuitSource::catalog(id).unwrap())
            .unwrap();
        let lut = live_lut(s.netlist());
        let bits = flipped_bits(s.netlist(), lut);

        // Batch 1: retable.
        let out = s
            .apply_eco(&[EcoEdit::ReplaceTable {
                node: NodeRef::Id(lut.index()),
                bits,
            }])
            .unwrap();
        assert!(out.eco.cuts_reused > 0, "{id}: clean cones translate");
        assert_matches_scratch(&s, &format!("{id} after retable"));

        // Batch 2: splice — insert an AND of the edited LUT's first two
        // fanins, then swing the LUT's pin 0 onto it. One batch, two
        // edits; the insert is referenced by batch end.
        let fanins = s.netlist().node(lut).fanins();
        let (a, b) = (fanins[0], fanins[fanins.len().min(2) - 1]);
        // Whether the mapper absorbs the splice into an identical cover
        // (possible when it is functionally transparent) or recomputes
        // downstream, the session must stay bit-identical to scratch.
        s.apply_eco(&[
            EcoEdit::Insert {
                name: Some(format!("{id}_splice")),
                bits: 0x8,
                inputs: vec![NodeRef::Id(a.index()), NodeRef::Id(b.index())],
            },
            EcoEdit::Rewire {
                node: NodeRef::Id(lut.index()),
                pin: 0,
                src: NodeRef::Name(format!("{id}_splice")),
            },
        ])
        .unwrap();
        assert_matches_scratch(&s, &format!("{id} after splice"));

        // Batch 3: retable the spliced LUT back via its name.
        s.apply_eco(&[EcoEdit::ReplaceTable {
            node: NodeRef::Name(format!("{id}_splice")),
            bits: 0x6,
        }])
        .unwrap();
        assert_matches_scratch(&s, &format!("{id} after re-retable"));
    }
}

/// Random netlists under random edit sequences: every successful batch
/// stays bit-identical to scratch; every failed batch (cycle, in-use
/// removal, ...) rolls back to exactly the pre-batch state. The session
/// must keep working after failures.
#[test]
fn random_netlists_survive_random_edit_sequences() {
    let mut total_hits = 0;
    for seed in [0xEC01_u64, 0xEC02, 0xEC03, 0xEC04] {
        let netlist = random_netlist(&RandomSpec::new(seed));
        let pipeline = Pipeline::new(opts(true, 5));
        let mut s = pipeline
            .eco_session(&CircuitSource::Netlist {
                name: format!("rand-{seed:x}"),
                netlist,
            })
            .unwrap();
        let mut rng = Lcg::new(seed ^ 0xD1CE);
        let mut applied = 0usize;
        for step in 0..10 {
            let Some(edit) = random_edit(s.netlist(), &mut rng) else {
                continue;
            };
            let before = s.netlist().fingerprint();
            let ctx = format!("rand-{seed:x} step {step} ({edit:?})");
            match s.apply_eco(std::slice::from_ref(&edit)) {
                Ok(out) => {
                    applied += 1;
                    total_hits += out.eco.trigger_hits;
                    assert_matches_scratch(&s, &ctx);
                }
                Err(_) => {
                    assert_eq!(
                        s.netlist().fingerprint(),
                        before,
                        "{ctx}: failed batch must roll back"
                    );
                }
            }
        }
        assert!(applied > 0, "seed {seed:#x}: no edit ever applied");
    }
    assert!(
        total_hits > 0,
        "across all random sessions, some trigger search must hit the cache"
    );
}

/// Draws one random edit against the current netlist, or `None` when the
/// drawn kind has no applicable target (e.g. nothing removable).
fn random_edit(n: &Netlist, rng: &mut Lcg) -> Option<EcoEdit> {
    let luts: Vec<NodeId> = n
        .iter()
        .filter(|(_, node)| node.is_lut())
        .map(|(id, _)| id)
        .collect();
    let pick = |rng: &mut Lcg, v: &[NodeId]| v[rng.below(v.len())];
    match rng.below(4) {
        0 => {
            let lut = pick(rng, &luts);
            let width = 1u32 << n.node(lut).fanins().len();
            let mask = (1u128 << width) - 1;
            Some(EcoEdit::ReplaceTable {
                node: NodeRef::Id(lut.index()),
                bits: rng.next_u64() & (mask as u64),
            })
        }
        1 => {
            let lut = pick(rng, &luts);
            let arity = n.node(lut).fanins().len();
            Some(EcoEdit::Rewire {
                node: NodeRef::Id(lut.index()),
                pin: rng.below(arity),
                // Any node, the LUT itself included: self-loops and
                // cycles must come back as typed errors, not hangs.
                src: NodeRef::Id(rng.below(n.len())),
            })
        }
        2 => {
            let a = rng.below(n.len());
            let b = rng.below(n.len());
            Some(EcoEdit::Insert {
                name: None,
                bits: rng.next_u64() & 0xF,
                inputs: vec![NodeRef::Id(a), NodeRef::Id(b)],
            })
        }
        _ => {
            // Something unreferenced and removable, if any.
            let mut read = vec![false; n.len()];
            for (_, node) in n.iter() {
                for f in node.fanins() {
                    read[f.index()] = true;
                }
            }
            for (_, id) in n.outputs() {
                read[id.index()] = true;
            }
            let dead: Vec<NodeId> = n
                .iter()
                .filter(|(id, node)| !read[id.index()] && !node.is_input())
                .map(|(id, _)| id)
                .collect();
            if dead.is_empty() {
                return None;
            }
            Some(EcoEdit::Remove {
                node: NodeRef::Id(pick(rng, &dead).index()),
            })
        }
    }
}

/// A cycle-creating rewire surfaces as the typed
/// [`NetlistError::CombinationalLoop`] (the post-batch `validate` finds
/// it before any stage runs, lint on or off) — never a hang — and the
/// session rolls back and stays usable.
#[test]
fn cycle_creating_rewire_is_typed_never_hangs() {
    let mut n = Netlist::new("cyc");
    let a = n.add_input("a");
    let g1 = n.add_not(a).unwrap();
    let g2 = n.add_not(g1).unwrap();
    n.set_output("y", g2);
    let src = CircuitSource::Netlist {
        name: "cyc".into(),
        netlist: n,
    };
    let make_cycle = [EcoEdit::Rewire {
        node: NodeRef::Id(g1.index()),
        pin: 0,
        src: NodeRef::Id(g2.index()),
    }];

    for lint_on in [true, false] {
        let mut o = opts(false, 4);
        o.lint.enabled = lint_on;
        let mut s = Pipeline::new(o).eco_session(&src).unwrap();
        let before = s.netlist().fingerprint();
        match s.apply_eco(&make_cycle) {
            Err(FlowError::Netlist(NetlistError::CombinationalLoop { path })) => {
                assert!(path.contains(&g1) && path.contains(&g2), "names the cycle");
            }
            other => panic!("lint={lint_on}: expected CombinationalLoop, got {other:?}"),
        }
        assert_eq!(
            s.netlist().fingerprint(),
            before,
            "lint={lint_on}: cycle batch must roll back"
        );
        // Still usable: a legal edit (NOT -> buffer) compiles afterwards.
        let out = s
            .apply_eco(&[EcoEdit::ReplaceTable {
                node: NodeRef::Id(g1.index()),
                bits: 0x2,
            }])
            .unwrap();
        assert!(!out.eco.downstream_skipped);
        assert_matches_scratch(&s, &format!("post-cycle edit (lint={lint_on})"));
    }
}

/// Removing a primary-output driver is rejected with a typed error that
/// names the output, and nothing changes.
#[test]
fn removing_a_primary_output_driver_is_rejected() {
    let pipeline = Pipeline::new(opts(false, 4));
    let mut s = pipeline
        .eco_session(&CircuitSource::catalog("b01").unwrap())
        .unwrap();
    let (name, driver) = s.netlist().outputs()[0].clone();
    let before = s.netlist().fingerprint();
    match s.apply_eco(&[EcoEdit::Remove {
        node: NodeRef::Id(driver.index()),
    }]) {
        Err(FlowError::Netlist(NetlistError::RemoveInUse { user, .. })) => {
            assert!(
                user.contains(&name),
                "error names the output: {user} vs {name}"
            );
        }
        other => panic!("expected RemoveInUse, got {other:?}"),
    }
    assert_eq!(s.netlist().fingerprint(), before);
}

/// A table edit that turns a LUT constant surfaces `PL0007` in the
/// recompile's own lint stage — the diagnostic appears incrementally,
/// without a from-scratch relint.
#[test]
fn constant_making_edit_surfaces_pl0007_incrementally() {
    let mut n = Netlist::new("constable");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let g = n.add_and2(a, b).unwrap();
    n.set_output("y", g);
    let mut s = Pipeline::new(opts(false, 4))
        .eco_session(&CircuitSource::Netlist {
            name: "constable".into(),
            netlist: n,
        })
        .unwrap();
    let had_before = |out: &EcoSession| {
        out.artifacts().report.lint.as_ref().is_some_and(|l| {
            l.report
                .diagnostics()
                .iter()
                .any(|d| d.code.to_string() == "PL0007")
        })
    };
    assert!(!had_before(&s), "baseline is PL0007-clean");
    let out = s
        .apply_eco(&[EcoEdit::ReplaceTable {
            node: NodeRef::Id(g.index()),
            bits: 0x0, // AND -> constant false
        }])
        .unwrap();
    let lint = out.flow.lint.expect("lint stage ran");
    assert!(
        lint.report
            .diagnostics()
            .iter()
            .any(|d| d.code.to_string() == "PL0007"),
        "constant LUT warned incrementally: {:?}",
        lint.report
    );
    assert_matches_scratch(&s, "constant-making edit");
}

/// BLIF undriven-net notes are re-derived on every recompile: an edit
/// that names the undriven signal silences its `PL0009`, and removing
/// that node brings the note back — no stale carry-over either way.
#[test]
fn eco_edits_rederive_blif_undriven_notes() {
    let blif = "\
.model noteful
.inputs a
.outputs q
.latch a q re clk 0
.end
";
    let src = CircuitSource::BlifText {
        name: "noteful".into(),
        text: blif.into(),
    };
    let pl0009 = |out: &EcoOutcome| {
        out.flow.lint.as_ref().is_some_and(|l| {
            l.report
                .diagnostics()
                .iter()
                .any(|d| d.code.to_string() == "PL0009")
        })
    };
    let mut s = Pipeline::new(opts(false, 4)).eco_session(&src).unwrap();
    assert!(
        s.artifacts().report.lint.as_ref().is_some_and(|l| l
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code.to_string() == "PL0009")),
        "baseline notes the undriven 'clk'"
    );

    // Naming a node 'clk' resolves the note; the recompile drops it.
    let out = s
        .apply_eco(&[EcoEdit::Insert {
            name: Some("clk".into()),
            bits: 0x2,
            inputs: vec![NodeRef::Name("a".into()), NodeRef::Name("a".into())],
        }])
        .unwrap();
    assert!(!pl0009(&out), "resolved note must not be carried stale");

    // Removing it un-resolves the note; the recompile re-derives it.
    let out = s
        .apply_eco(&[EcoEdit::Remove {
            node: NodeRef::Name("clk".into()),
        }])
        .unwrap();
    assert!(pl0009(&out), "un-resolved note comes back");
    assert_matches_scratch(&s, "note round-trip");
}

/// Removing dead logic leaves the mapped netlist untouched, so the whole
/// downstream is reused verbatim — and that reuse is still bit-identical
/// to a scratch compile of the edited netlist.
#[test]
fn dead_logic_removal_skips_downstream_and_still_matches_scratch() {
    let mut n = Netlist::new("deadwood");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let live = n.add_and2(a, b).unwrap();
    let dead = n.add_xor2(a, b).unwrap();
    n.set_output("y", live);
    let mut s = Pipeline::new(opts(true, 4))
        .eco_session(&CircuitSource::Netlist {
            name: "deadwood".into(),
            netlist: n,
        })
        .unwrap();
    let out = s
        .apply_eco(&[EcoEdit::Remove {
            node: NodeRef::Id(dead.index()),
        }])
        .unwrap();
    assert!(
        out.eco.downstream_skipped,
        "dead removal cannot change the map"
    );
    assert_eq!(out.eco.trigger_hits, 0, "no EE search ran at all");
    assert_matches_scratch(&s, "dead removal");
}
