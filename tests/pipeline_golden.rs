//! Pipeline golden tests: the write → parse → map → simulate loop.
//!
//! The BLIF round-trip property test (`prop_flow`) covers the parser
//! layer; these tests close the loop at the *pipeline* layer: a catalog
//! circuit exported as BLIF and re-ingested through `pl-flow` must
//! produce bit-identical plain/EE/sync outputs to the catalog-built flow,
//! and the vendored snapshots under `assets/blif/` must stay byte-equal
//! to a fresh export so the file-based entry point never drifts from the
//! catalog.

use pl_flow::{CircuitSource, FlowArtifacts, FlowOptions, Pipeline};

const VECTORS: usize = 30;

fn pipeline() -> Pipeline {
    Pipeline::new(FlowOptions {
        vectors: VECTORS,
        ..FlowOptions::default()
    })
}

/// Runs the full flow (EE on, synchronous verification on) for a source.
fn run(source: &CircuitSource) -> FlowArtifacts {
    pipeline()
        .run(source)
        .unwrap_or_else(|e| panic!("flow failed for {}: {e}", source.name()))
}

/// The catalog circuit exported to BLIF text by the `pl-netlist` writer.
fn exported_blif(id: &str) -> String {
    let bench = pl_itc99::by_id(id).expect("benchmark exists");
    let gates = (bench.build)().elaborate().expect("elaborates");
    pl_netlist::blif::to_blif(&gates).expect("serializes")
}

/// Catalog-built flow vs the same circuit round-tripped through BLIF:
/// plain outputs must match bit-for-bit (and within each flow the
/// pipeline has already asserted EE outputs equal plain outputs, while
/// `verify` pinned them against the synchronous reference).
fn assert_blif_roundtrip_matches_catalog(id: &str) {
    let catalog = run(&CircuitSource::catalog(id).expect("benchmark exists"));
    let blif = run(&CircuitSource::BlifText {
        name: format!("{id}.blif"),
        text: exported_blif(id),
    });

    assert_eq!(
        catalog.outputs, blif.outputs,
        "{id}: BLIF re-ingestion changed simulated outputs"
    );
    for art in [&catalog, &blif] {
        assert!(
            art.report.early_eval.enabled && art.stats_ee.is_some(),
            "{id}: EE variant missing from {}",
            art.name
        );
        let verify = art
            .report
            .verify
            .as_ref()
            .unwrap_or_else(|| panic!("{id}: sync verification did not run on {}", art.name));
        assert_eq!(verify.vectors, VECTORS);
    }
    // The round-trip may add buffer LUTs for output names, but the EE
    // opportunity structure of the logic must survive the text format:
    // a circuit with pairs on one side must have pairs on the other.
    assert_eq!(
        catalog.pairs.is_empty(),
        blif.pairs.is_empty(),
        "{id}: EE pairing disappeared across the BLIF round-trip"
    );
}

#[test]
fn b03_blif_roundtrip_is_bit_identical() {
    assert_blif_roundtrip_matches_catalog("b03");
}

#[test]
fn b09_blif_roundtrip_is_bit_identical() {
    assert_blif_roundtrip_matches_catalog("b09");
}

/// The vendored `assets/blif/` snapshots must stay byte-identical to a
/// fresh export of the catalog circuit (regenerate with
/// `plc <id> --stage ingest --emit-blif assets/blif/<id>.blif`).
#[test]
fn vendored_blif_assets_are_fresh() {
    let assets = pl_itc99::blif_assets();
    assert!(
        assets.len() >= 4,
        "expected several vendored snapshots, found {}",
        assets.len()
    );
    for asset in assets {
        assert_eq!(
            asset.text,
            exported_blif(asset.id),
            "{}: vendored assets/blif/{}.blif is stale — regenerate with \
             `plc {} --stage ingest --emit-blif assets/blif/{}.blif`",
            asset.id,
            asset.id,
            asset.id,
            asset.id,
        );
    }
}

/// The vendored snapshots themselves must run the full flow with EE and
/// synchronous verification, producing the catalog circuit's outputs —
/// the end-to-end contract of the file-based entry point.
#[test]
fn vendored_blif_assets_run_end_to_end() {
    for asset in pl_itc99::blif_assets() {
        let catalog = run(&CircuitSource::catalog(asset.id).expect("catalog id"));
        let from_file = run(&CircuitSource::BlifText {
            name: format!("assets/blif/{}.blif", asset.id),
            text: asset.text.to_string(),
        });
        assert_eq!(
            catalog.outputs, from_file.outputs,
            "{}: vendored snapshot diverged from the catalog circuit",
            asset.id
        );
        assert!(from_file.report.verify.is_some());
    }
}

/// Stopping at intermediate stages yields the same artifacts the full
/// run passes through (callers can stop at any layer without penalty).
#[test]
fn staged_and_chained_runs_agree() {
    let p = pipeline();
    let src = CircuitSource::catalog("b03").unwrap();

    let ingested = p.ingest(&src).unwrap();
    let optimized = p.optimize(ingested).unwrap();
    let mapped = p.techmap(optimized).unwrap();
    let phased = p.phased(&mapped).unwrap();
    let early = p.early_eval(phased);
    let sim = p.simulate(&early).unwrap();

    let chained = p.run(&src).unwrap();
    assert_eq!(chained.outputs, sim.outputs);
    assert_eq!(
        chained.stats_plain.per_vector, sim.stats_plain.per_vector,
        "staged and chained latencies diverged"
    );
    assert_eq!(chained.pairs.len(), early.pairs.len());
    assert_eq!(
        chained.report.phased.logic_gates,
        early.plain.num_logic_gates()
    );
}
