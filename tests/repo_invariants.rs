//! Repository-wide invariants, enforced as a test so CI catches drift:
//! every crate in the workspace — the pl-* layers, the vendored stubs and
//! the facade itself — must carry `#![forbid(unsafe_code)]` at its root.
//! The whole reproduction is safe Rust; a crate that silently drops the
//! attribute re-opens the door without anyone noticing.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every `<dir>/*/src/lib.rs` under the repo root.
fn crate_roots_under(dir: &str) -> Vec<PathBuf> {
    let mut roots: Vec<PathBuf> = std::fs::read_dir(repo_root().join(dir))
        .unwrap_or_else(|e| panic!("reading {dir}: {e}"))
        .map(|entry| entry.unwrap().path().join("src/lib.rs"))
        .filter(|p| p.is_file())
        .collect();
    roots.sort();
    roots
}

#[test]
fn every_workspace_crate_forbids_unsafe_code() {
    let mut roots = vec![repo_root().join("src/lib.rs")];
    roots.extend(crate_roots_under("crates"));
    roots.extend(crate_roots_under("vendor"));
    assert!(
        roots.len() >= 14,
        "expected the facade + 10 pl-* crates + 3 vendored stubs, found {}: {roots:?}",
        roots.len()
    );
    for root in roots {
        let text = std::fs::read_to_string(&root)
            .unwrap_or_else(|e| panic!("reading {}: {e}", root.display()));
        assert!(
            text.contains("#![forbid(unsafe_code)]"),
            "{} does not forbid unsafe code",
            root.display()
        );
    }
}
