//! The `pld` daemon's determinism contract: every response is
//! bit-identical to an in-process run with the same options — under
//! concurrent sessions, deterministic LRU eviction and churn,
//! re-compiles after eviction, and ECO edits applied to warm cache
//! entries. Plus the failure-containment contract: every
//! malformed-frame class is rejected typed and the server survives.

use pl_flow::{CircuitSource, EcoEdit, Pipeline};
use pl_serve::wire::{crc32, write_frame, MAGIC};
use pl_serve::{
    outputs_digest, Client, DesignSpec, DigestTriple, PldServer, Request, RequestOptions, Response,
    ServerConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn start_server(cache_entries: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Arc::new(
        PldServer::bind(
            "127.0.0.1:0",
            &ServerConfig {
                cache_entries,
                read_timeout: Some(Duration::from_secs(10)),
            },
        )
        .expect("bind ephemeral"),
    );
    let addr = server.local_addr().expect("bound addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn shutdown(addr: SocketAddr) {
    let mut client = Client::connect(&addr.to_string()).expect("connect for shutdown");
    assert!(matches!(
        client.expect_ok(&Request::Shutdown).expect("shutdown"),
        Response::ShutdownOk
    ));
}

fn source_of(design: &DesignSpec) -> CircuitSource {
    match design {
        DesignSpec::Spec(s) => CircuitSource::from_spec(s),
        DesignSpec::BlifText { name, text } => CircuitSource::BlifText {
            name: name.clone(),
            text: text.clone(),
        },
    }
}

/// The in-process reference: a full `Pipeline::run` under the exact
/// options the daemon expands the request to.
fn in_process_digest(design: &DesignSpec, options: &RequestOptions) -> DigestTriple {
    let art = Pipeline::new(options.to_flow_options())
        .run(&source_of(design))
        .expect("in-process run");
    DigestTriple {
        mapped_fp: art.mapped.fingerprint(),
        phased_fp: art.plain.fingerprint(),
        outputs_digest: outputs_digest(&art.outputs),
    }
}

fn compile_digest(
    addr: SocketAddr,
    design: &DesignSpec,
    options: &RequestOptions,
) -> (DigestTriple, bool) {
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    match client
        .expect_ok(&Request::Compile {
            design: design.clone(),
            options: options.clone(),
        })
        .expect("compile request")
    {
        Response::CompileOk {
            digest, cache_hit, ..
        } => (digest, cache_hit),
        other => panic!("expected CompileOk, got {other:?}"),
    }
}

fn stats(addr: SocketAddr) -> pl_serve::ServerStats {
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    match client.expect_ok(&Request::Stats).expect("stats request") {
        Response::StatsOk(s) => s,
        other => panic!("expected StatsOk, got {other:?}"),
    }
}

/// ≥4 concurrent client sessions over a small cache (so eviction and
/// churn happen mid-flight) against an ITC'99 sample, plain and EE,
/// scalar and `--lanes 64`: every response must carry exactly the
/// digests of a sequential in-process run with the same options.
#[test]
fn concurrent_sessions_match_in_process_runs() {
    let designs = ["b01", "b03", "b06"];
    let variants: Vec<RequestOptions> = vec![
        RequestOptions {
            vectors: 30,
            verify: true,
            ..RequestOptions::default()
        },
        RequestOptions {
            vectors: 30,
            ee: true,
            verify: true,
            ..RequestOptions::default()
        },
        RequestOptions {
            vectors: 64,
            ee: true,
            lanes: Some(64),
            ..RequestOptions::default()
        },
    ];
    let mut cases = Vec::new();
    for d in designs {
        for v in &variants {
            let design = DesignSpec::Spec(d.to_string());
            let expected = in_process_digest(&design, v);
            cases.push((design, v.clone(), expected));
        }
    }
    // Capacity below the working set: the 9 keys churn through 4 slots
    // while 6 sessions hammer them in different orders.
    let (addr, handle) = start_server(4);
    std::thread::scope(|scope| {
        for t in 0..6 {
            let cases = &cases;
            scope.spawn(move || {
                let mut client = Client::connect(&addr.to_string()).expect("connect");
                for i in 0..cases.len() {
                    // Each session walks the cases at a different phase
                    // so hits, misses and evictions interleave.
                    let (design, options, expected) = &cases[(i + t * 2) % cases.len()];
                    let got = match client
                        .expect_ok(&Request::Compile {
                            design: design.clone(),
                            options: options.clone(),
                        })
                        .expect("compile")
                    {
                        Response::CompileOk { digest, .. } => digest,
                        other => panic!("expected CompileOk, got {other:?}"),
                    };
                    assert_eq!(&got, expected, "session {t}, case {i}");
                }
            });
        }
    });
    let s = stats(addr);
    assert!(s.misses >= 9, "every key compiled at least once: {s:?}");
    assert!(s.evictions > 0, "capacity 4 under 9 keys must churn: {s:?}");
    assert_eq!(s.malformed, 0);
    shutdown(addr);
    handle.join().expect("server thread");
}

/// Sequential trace against a capacity-2 cache: eviction order is
/// strict LRU (deterministic), and a re-compiled-after-eviction entry
/// yields digests identical to the first compile.
#[test]
fn lru_eviction_is_deterministic_and_recompiles_identically() {
    let (addr, handle) = start_server(2);
    let opts = RequestOptions {
        vectors: 20,
        ee: true,
        ..RequestOptions::default()
    };
    let d = |name: &str| DesignSpec::Spec(name.to_string());

    let (b01_first, hit) = compile_digest(addr, &d("b01"), &opts);
    assert!(!hit);
    let (_, hit) = compile_digest(addr, &d("b02"), &opts);
    assert!(!hit);
    // Touch b01 so b02 is the LRU victim when b03 lands.
    let (b01_again, hit) = compile_digest(addr, &d("b01"), &opts);
    assert!(hit, "b01 is warm");
    assert_eq!(b01_again, b01_first, "warm entry reproduces its digests");
    let (_, hit) = compile_digest(addr, &d("b03"), &opts);
    assert!(!hit);
    let s = stats(addr);
    assert_eq!((s.entries, s.capacity), (2, 2));
    assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1), "{s:?}");

    // b02 was evicted (b01 was not, proving LRU picked the right
    // victim); recompiling it is a miss with identical digests.
    let (b01_warm, hit) = compile_digest(addr, &d("b01"), &opts);
    assert!(hit, "b01 survived the eviction");
    assert_eq!(b01_warm, b01_first);
    let b02_expected = in_process_digest(&d("b02"), &opts);
    let (b02_recompiled, hit) = compile_digest(addr, &d("b02"), &opts);
    assert!(!hit, "b02 was the deterministic LRU victim");
    assert_eq!(
        b02_recompiled, b02_expected,
        "re-compiled-after-eviction entry is bit-identical"
    );
    shutdown(addr);
    handle.join().expect("server thread");
}

/// ECO edits against a warm cache entry: the daemon's per-edit digest
/// trail must match an in-process `EcoSession` applying the same edits
/// one batch at a time — and the warm entry must still answer a plain
/// compile with the un-edited design afterwards.
#[test]
fn eco_on_warm_entry_matches_in_process_session() {
    let text = std::fs::read_to_string("assets/blif/b06.blif").expect("vendored BLIF");
    let design = DesignSpec::BlifText {
        name: "b06".to_string(),
        text,
    };
    let options = RequestOptions {
        vectors: 40,
        ee: true,
        ..RequestOptions::default()
    };
    let edit_specs = ["table:n8:0x6", "rewire:n12:0:n5"];

    // In-process reference: one session, one single-edit batch per
    // spec, exactly like `plc eco`.
    let mut session = Pipeline::new(options.to_flow_options())
        .eco_session(&source_of(&design))
        .expect("in-process session");
    let initial_expected = DigestTriple {
        mapped_fp: session.artifacts().mapped.fingerprint(),
        phased_fp: session.artifacts().plain.fingerprint(),
        outputs_digest: outputs_digest(&session.artifacts().outputs),
    };
    let mut expected = Vec::new();
    for spec in edit_specs {
        let edit = EcoEdit::parse(spec).expect("valid edit");
        let out = session
            .apply_eco(std::slice::from_ref(&edit))
            .expect("apply");
        expected.push(DigestTriple {
            mapped_fp: out.eco.mapped_fingerprint,
            phased_fp: out.eco.phased_fingerprint,
            outputs_digest: outputs_digest(&session.artifacts().outputs),
        });
    }

    let (addr, handle) = start_server(4);
    // Warm the entry, then edit it.
    let (compile_d, hit) = compile_digest(addr, &design, &options);
    assert!(!hit);
    assert_eq!(compile_d, initial_expected);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let response = client
        .expect_ok(&Request::Eco {
            design: design.clone(),
            options: options.clone(),
            edits: edit_specs.iter().map(|s| s.to_string()).collect(),
        })
        .expect("eco request");
    match response {
        Response::EcoOk {
            cache_hit,
            initial,
            edits,
            ..
        } => {
            assert!(cache_hit, "edits ran against the warm entry");
            assert_eq!(initial, initial_expected);
            let got: Vec<DigestTriple> = edits.iter().map(|e| e.digest).collect();
            assert_eq!(got, expected, "per-edit digest trail diverged");
        }
        other => panic!("expected EcoOk, got {other:?}"),
    }
    // The warm entry still serves the un-edited design.
    let (after, hit) = compile_digest(addr, &design, &options);
    assert!(hit);
    assert_eq!(after, initial_expected, "entry stayed pristine");
    let s = stats(addr);
    assert_eq!(s.eco_edits, edit_specs.len() as u64);
    shutdown(addr);
    handle.join().expect("server thread");
}

fn read_error_frame(stream: &mut TcpStream) -> (u16, String) {
    let mut raw = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.read_to_end(&mut raw).expect("read response");
    // magic(4) kind(1) len(4) payload crc(4)
    assert!(raw.len() >= 13, "got {} byte(s)", raw.len());
    assert_eq!(&raw[..4], &MAGIC, "response is framed");
    assert_eq!(raw[4], 0xE0, "error kind");
    let len = u32::from_le_bytes(raw[5..9].try_into().unwrap()) as usize;
    let payload = &raw[9..9 + len];
    let code = u16::from_le_bytes(payload[..2].try_into().unwrap());
    let msg_len = u64::from_le_bytes(payload[2..10].try_into().unwrap()) as usize;
    let message = String::from_utf8(payload[10..10 + msg_len].to_vec()).expect("utf8");
    (code, message)
}

/// Every malformed-frame class gets a typed error response — never a
/// panic, never a hang — and the server keeps serving afterwards.
#[test]
fn malformed_frames_are_rejected_typed_and_server_survives() {
    let (addr, handle) = start_server(2);
    let healthy = |label: &str| {
        let s = stats(addr);
        assert!(s.capacity == 2, "{label}: server unhealthy: {s:?}");
    };

    // Garbage magic (exactly 4 bytes, then half-close: unread bytes at
    // server-side close would RST the in-flight error response away).
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"HTTP").expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (code, message) = read_error_frame(&mut stream);
    assert_eq!(code, pl_serve::proto::ERR_FRAME, "{message}");
    assert!(message.contains("magic"), "{message}");
    healthy("after bad magic");

    // Truncated frame: a valid prefix, then a half-closed socket.
    let mut full = Vec::new();
    let (kind, payload) = Request::Stats.encode();
    write_frame(&mut full, kind, &payload).expect("encode");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&full[..full.len() - 2]).expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (code, message) = read_error_frame(&mut stream);
    assert_eq!(code, pl_serve::proto::ERR_FRAME, "{message}");
    assert!(message.contains("truncated"), "{message}");
    healthy("after truncation");

    // Oversized length field: rejected before any allocation.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(0x01);
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.write_all(&frame).expect("write");
    let (code, message) = read_error_frame(&mut stream);
    assert_eq!(code, pl_serve::proto::ERR_FRAME, "{message}");
    assert!(
        message.contains("oversized") || message.contains("cap"),
        "{message}"
    );
    healthy("after oversized length");

    // Corrupt payload checksum.
    let mut bad_crc = full.clone();
    let n = bad_crc.len();
    bad_crc[n - 1] ^= 0x01;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&bad_crc).expect("write");
    let (code, message) = read_error_frame(&mut stream);
    assert_eq!(code, pl_serve::proto::ERR_FRAME, "{message}");
    assert!(message.contains("checksum"), "{message}");
    healthy("after bad checksum");

    // Unknown request kind on a well-formed frame: typed error AND the
    // connection survives for the next request.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let garbage_payload = b"zzzz";
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(0x7F);
    frame.extend_from_slice(&(garbage_payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(garbage_payload);
    frame.extend_from_slice(&crc32(garbage_payload).to_le_bytes());
    stream.write_all(&frame).expect("write");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // Read exactly one response frame by hand, then reuse the socket.
    let mut head = [0u8; 9];
    stream.read_exact(&mut head).expect("error frame head");
    assert_eq!(&head[..4], &MAGIC);
    assert_eq!(head[4], 0xE0);
    let len = u32::from_le_bytes(head[5..9].try_into().unwrap()) as usize;
    let mut rest = vec![0u8; len + 4];
    stream.read_exact(&mut rest).expect("error frame body");
    let code = u16::from_le_bytes(rest[..2].try_into().unwrap());
    assert_eq!(code, pl_serve::proto::ERR_REQUEST);
    let (kind, payload) = Request::Stats.encode();
    write_frame(&mut stream, kind, &payload).expect("same-connection request");
    let mut head = [0u8; 9];
    stream.read_exact(&mut head).expect("stats head");
    assert_eq!(head[4], 0x83, "connection survived a request-level error");
    // Drain the rest of the response so dropping the socket is a clean
    // close, not a reset.
    let len = u32::from_le_bytes(head[5..9].try_into().unwrap()) as usize;
    let mut rest = vec![0u8; len + 4];
    stream.read_exact(&mut rest).expect("stats body");
    drop(stream);

    // The server still compiles after all of the above, and counted
    // every rejection.
    let opts = RequestOptions {
        vectors: 10,
        ..RequestOptions::default()
    };
    let expected = in_process_digest(&DesignSpec::Spec("b01".into()), &opts);
    let (got, _) = compile_digest(addr, &DesignSpec::Spec("b01".into()), &opts);
    assert_eq!(got, expected);
    let s = stats(addr);
    assert_eq!(s.malformed, 5, "{s:?}");
    shutdown(addr);
    handle.join().expect("server thread");
}

/// The daemon request path rejects exactly the option combinations the
/// CLI rejects, with the same `FlowOptions::validate` messages.
#[test]
fn daemon_rejects_every_cli_rejected_combination() {
    let (addr, handle) = start_server(2);
    let cases: Vec<(RequestOptions, &str)> = vec![
        (
            RequestOptions {
                lanes: Some(7),
                ..RequestOptions::default()
            },
            "--lanes 7 is not a supported width",
        ),
        (
            RequestOptions {
                window: Some(0),
                ..RequestOptions::default()
            },
            "--window must be at least 1",
        ),
        (
            RequestOptions {
                lanes: Some(64),
                window: Some(4),
                ..RequestOptions::default()
            },
            "--lanes is mutually exclusive with --window",
        ),
        (
            RequestOptions {
                lut_size: 9,
                ..RequestOptions::default()
            },
            "--lut-size 9 is outside the supported range",
        ),
    ];
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    for (options, expect) in cases {
        let response = client
            .request(&Request::Compile {
                design: DesignSpec::Spec("b01".into()),
                options,
            })
            .expect("transport ok");
        match response {
            Response::Error { code, message } => {
                assert_eq!(code, pl_serve::proto::ERR_OPTIONS, "{message}");
                assert!(
                    message.contains(expect),
                    "expected {expect:?} in {message:?}"
                );
            }
            other => panic!("expected Error for {expect:?}, got {other:?}"),
        }
    }
    // The connection survives option rejections.
    let opts = RequestOptions {
        vectors: 10,
        ..RequestOptions::default()
    };
    match client
        .expect_ok(&Request::Compile {
            design: DesignSpec::Spec("b01".into()),
            options: opts,
        })
        .expect("compile after rejections")
    {
        Response::CompileOk { .. } => {}
        other => panic!("expected CompileOk, got {other:?}"),
    }
    shutdown(addr);
    handle.join().expect("server thread");
}
