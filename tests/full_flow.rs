//! End-to-end integration tests: RTL → LUT4 mapping → phased logic → early
//! evaluation → simulation, with functional equivalence and marked-graph
//! invariants checked at every stage.

use phased_logic_ee::prelude::*;
use pl_core::marked::{check_liveness, check_safety};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vectors(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n_inputs).map(|_| rng.gen()).collect())
        .collect()
}

/// Runs the full flow for one ITC99 benchmark and checks every invariant.
fn flow_checks(id: &str, vectors: usize) {
    let bench = pl_itc99::by_id(id).expect("benchmark exists");
    let gates = (bench.build)().elaborate().expect("elaborates");
    let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("maps");

    // Mapping preserved behaviour.
    let vecs = random_vectors(mapped.inputs().len(), vectors, 0xF10);
    {
        let mut a = SyncSimulator::new(&gates).expect("raw validates");
        let mut b = SyncSimulator::new(&mapped).expect("mapped validates");
        for v in &vecs {
            assert_eq!(
                a.step(v).unwrap(),
                b.step(v).unwrap(),
                "{id}: mapping changed function"
            );
        }
    }

    // PL mapping: live, safe, equivalent.
    let pl = PlNetlist::from_sync(&mapped).expect("PL maps");
    check_liveness(&pl).unwrap_or_else(|e| panic!("{id}: liveness: {e}"));
    check_safety(&pl).unwrap_or_else(|e| panic!("{id}: safety: {e}"));
    let delays = DelayModel::default();
    pl_sim::verify_equivalence(&mapped, &pl, &delays, &vecs)
        .expect("simulation runs")
        .unwrap_or_else(|m| panic!("{id}: PL diverged: {m}"));

    // EE: live, safe, still equivalent.
    let report = PlNetlist::from_sync(&mapped)
        .expect("PL maps")
        .with_early_evaluation(&EeOptions::default());
    check_liveness(report.netlist()).unwrap_or_else(|e| panic!("{id}: EE liveness: {e}"));
    check_safety(report.netlist()).unwrap_or_else(|e| panic!("{id}: EE safety: {e}"));
    pl_sim::verify_equivalence(&mapped, report.netlist(), &delays, &vecs)
        .expect("simulation runs")
        .unwrap_or_else(|m| panic!("{id}: EE diverged: {m}"));
}

#[test]
fn b01_full_flow() {
    flow_checks("b01", 60);
}

#[test]
fn b02_full_flow() {
    flow_checks("b02", 60);
}

#[test]
fn b03_full_flow() {
    flow_checks("b03", 40);
}

#[test]
fn b06_full_flow() {
    flow_checks("b06", 60);
}

#[test]
fn b09_full_flow() {
    flow_checks("b09", 40);
}

#[test]
fn b13_full_flow() {
    flow_checks("b13", 30);
}

#[test]
fn b04_datapath_full_flow() {
    flow_checks("b04", 25);
}

#[test]
fn b11_cipher_full_flow() {
    flow_checks("b11", 25);
}

/// The whole suite elaborates, maps and converts to live phased logic.
#[test]
fn entire_suite_reaches_phased_logic() {
    for bench in pl_itc99::catalog() {
        let gates = (bench.build)().elaborate().expect("elaborates");
        let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("maps");
        let pl = PlNetlist::from_sync(&mapped).expect("PL maps");
        check_liveness(&pl).unwrap_or_else(|e| panic!("{}: {e}", bench.id));
        assert!(pl.num_logic_gates() > 0);
    }
}

/// EE reports are internally consistent across the suite.
#[test]
fn ee_reports_are_consistent() {
    for bench in pl_itc99::catalog().into_iter().take(13) {
        let gates = (bench.build)().elaborate().expect("elaborates");
        let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("maps");
        let before = PlNetlist::from_sync(&mapped).expect("PL maps");
        let logic_before = before.num_logic_gates();
        let report = before.with_early_evaluation(&EeOptions::default());
        assert_eq!(
            report.netlist().num_logic_gates(),
            logic_before + report.pairs().len(),
            "{}: every pair adds exactly one trigger gate",
            bench.id
        );
        assert_eq!(report.netlist().num_ee_pairs(), report.pairs().len());
        assert!(report.examined() <= logic_before);
        for pair in report.pairs() {
            assert!(pair.candidate.coverage > 0.0);
            assert!(pair.candidate.offers_speedup());
        }
    }
}

/// Thresholding is monotone: higher thresholds never add pairs.
#[test]
fn threshold_monotonicity() {
    let bench = pl_itc99::by_id("b04").unwrap();
    let gates = (bench.build)().elaborate().unwrap();
    let mapped = map_to_lut4(&gates, &MapOptions::default()).unwrap();
    let mut last = usize::MAX;
    for t in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let report = PlNetlist::from_sync(&mapped)
            .unwrap()
            .with_early_evaluation(&EeOptions {
                cost_threshold: t,
                ..EeOptions::default()
            });
        assert!(report.pairs().len() <= last, "threshold {t} added pairs");
        last = report.pairs().len();
    }
}
