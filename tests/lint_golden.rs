//! Golden-pinned lint reports for the whole catalog and the vendored
//! BLIF assets, plus the behavioral contract around the lint stage: a
//! deny-level finding aborts the pipeline with a typed error that names
//! the combinational cycle, severity overrides re-gate the flow, the
//! JSON-lines rendering round-trips losslessly, and every `.latch` arity
//! walks through a full lint session.
//!
//! The CI lint smoke diffs `plc lint` output against the same goldens, so
//! the files under `tests/golden/lint/` are shared fixtures. After an
//! intentional diagnostics change, regenerate them with
//! `UPDATE_GOLDEN=1 cargo test --test lint_golden`.

use std::path::PathBuf;

use pl_flow::{CircuitSource, FlowError, FlowOptions, LintSession, Pipeline};
use pl_lint::{parse_json_line, Code, Severity};

const CATALOG: [&str; 15] = [
    "b01", "b02", "b03", "b04", "b05", "b06", "b07", "b08", "b09", "b10", "b11", "b12", "b13",
    "b14", "b15",
];
const ASSETS: [&str; 4] = ["b01", "b03", "b06", "b09"];

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/lint")
        .join(file)
}

/// Compares `actual` against the checked-in golden; with `UPDATE_GOLDEN`
/// set in the environment, rewrites the golden instead and passes.
fn check_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); create it with \
             `UPDATE_GOLDEN=1 cargo test --test lint_golden`",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "lint report drifted from {}; if the change is intentional, regenerate \
         with `UPDATE_GOLDEN=1 cargo test --test lint_golden`",
        path.display()
    );
}

fn session(source: &CircuitSource) -> LintSession {
    Pipeline::new(FlowOptions::default())
        .lint_session(source)
        .expect("lint session")
}

#[test]
fn catalog_lint_reports_match_goldens() {
    for id in CATALOG {
        let s = session(&CircuitSource::catalog(id).unwrap());
        assert!(!s.has_deny(), "{id}: catalog designs must never deny");
        check_golden(&format!("{id}.txt"), &s.render_text());
    }
}

#[test]
fn asset_lint_reports_match_goldens() {
    // Integration tests run with the package root as cwd, so this relative
    // spec is byte-identical to what CI passes to `plc lint` — the path is
    // the session name and appears in the golden's header line.
    for id in ASSETS {
        let s = session(&CircuitSource::from_spec(&format!("assets/blif/{id}.blif")));
        assert!(!s.has_deny(), "{id}: vendored assets must never deny");
        check_golden(&format!("asset_{id}.txt"), &s.render_text());
    }
}

/// b14 is the catalog design with real findings (PL0101 fanout warnings),
/// so its JSON-lines rendering is the non-trivial golden: pinned bytes AND
/// a lossless round-trip through the strict parser.
#[test]
fn b14_json_lines_match_golden_and_round_trip() {
    let s = session(&CircuitSource::catalog("b14").unwrap());
    let json = s.render_json_lines();
    assert!(!json.is_empty(), "b14 should carry fanout warnings");
    check_golden("b14.jsonl", &json);

    let parsed: Vec<_> = json
        .lines()
        .map(|line| parse_json_line(line).expect("every emitted line parses back"))
        .collect();
    let expected: Vec<_> = std::iter::once(&s.netlist)
        .chain(s.pl.as_ref())
        .flat_map(|report| {
            report
                .diagnostics()
                .iter()
                .map(|d| (report.pass().to_string(), d.clone()))
        })
        .collect();
    assert_eq!(parsed, expected, "JSON-lines round-trip must be lossless");
}

#[test]
fn lint_reports_are_run_to_run_identical() {
    let src = CircuitSource::catalog("b14").unwrap();
    let first = session(&src);
    for _ in 0..2 {
        let again = session(&src);
        assert_eq!(again.render_text(), first.render_text());
        assert_eq!(again.render_json_lines(), first.render_json_lines());
    }
}

/// A netlist seeded with a combinational cycle (via the `rewire_lut_input`
/// ECO edit) must abort `Pipeline::run` with the typed lint error, and the
/// PL0001 diagnostic must name the actual cycle path.
#[test]
fn seeded_cycle_aborts_the_run_and_names_the_path() {
    let mut nl = pl_netlist::Netlist::new("cyc");
    let a = nl.add_input("a");
    let x = nl.add_and2(a, a).unwrap();
    let y = nl.add_and2(x, a).unwrap();
    nl.set_name(x, "x").unwrap();
    nl.set_name(y, "y").unwrap();
    nl.set_output("o", y);
    nl.rewire_lut_input(x, 1, y).unwrap();
    let src = CircuitSource::Netlist {
        name: "cyc".into(),
        netlist: nl,
    };
    match Pipeline::new(FlowOptions::default()).run(&src) {
        Err(FlowError::Lint { pass, report }) => {
            assert_eq!(pass, "netlist");
            let d = &report.diagnostics()[0];
            assert_eq!(d.code, Code::new(1));
            assert_eq!(d.severity, Severity::Deny);
            assert_eq!(d.message, "combinational cycle: x -> y -> x");
        }
        other => panic!("expected FlowError::Lint, got {other:?}"),
    }
}

/// Per-code severity overrides re-gate the pipeline: escalating b14's
/// fanout warnings to deny aborts the run, demoting them to allow wipes
/// them from the report entirely.
#[test]
fn severity_overrides_regate_the_pipeline() {
    let src = CircuitSource::catalog("b14").unwrap();

    let mut deny = FlowOptions::default();
    deny.lint.overrides.push((Code::new(101), Severity::Deny));
    match Pipeline::new(deny).run(&src) {
        Err(FlowError::Lint { pass, report }) => {
            assert_eq!(pass, "netlist");
            assert!(report.has_deny());
            assert!(report
                .diagnostics()
                .iter()
                .all(|d| d.code == Code::new(101)));
        }
        other => panic!("expected FlowError::Lint under PL0101=deny, got {other:?}"),
    }

    let mut allow = FlowOptions::default();
    allow.lint.overrides.push((Code::new(101), Severity::Allow));
    let s = Pipeline::new(allow).lint_session(&src).unwrap();
    assert!(
        s.netlist.is_empty(),
        "PL0101=allow must silence b14's only findings"
    );
}

/// All four `.latch` arities — bare, with init, with type/control, and
/// with both — flow through a full lint session. The two clocked forms
/// reference an undriven control net, which surfaces as PL0009 instead of
/// vanishing silently.
#[test]
fn all_four_latch_arities_lint_through_the_session() {
    let blif = "\
.model arities
.inputs x
.outputs q0 q1 q2 q3
.latch n0 q0
.latch n1 q1 1
.latch n2 q2 re clk
.latch n3 q3 re clk 1
.names x n0
1 1
.names x n1
1 1
.names x n2
1 1
.names x n3
1 1
.end
";
    let src = CircuitSource::BlifText {
        name: "arities".into(),
        text: blif.into(),
    };
    let s = session(&src);
    assert!(!s.has_deny());
    let codes: Vec<u16> = s
        .netlist
        .diagnostics()
        .iter()
        .map(|d| d.code.number())
        .collect();
    assert_eq!(codes, vec![9, 9], "one note per undriven 'clk' reference");
    assert!(s.pl.is_some(), "clean netlist maps through the phased pass");
}

/// Degenerate netlists walk the lint *stage* (the gate `Pipeline::run`
/// uses) without findings or panics: an empty netlist and a
/// constant-only-output netlist are both clean.
#[test]
fn degenerate_netlists_pass_the_lint_stage_clean() {
    let pipeline = Pipeline::new(FlowOptions::default());
    let mut konst = pl_netlist::Netlist::new("konst");
    let k = konst.add_const(true);
    konst.set_output("y", k);
    for (name, netlist) in [
        ("empty", pl_netlist::Netlist::new("empty")),
        ("konst", konst),
    ] {
        let src = CircuitSource::Netlist {
            name: name.into(),
            netlist,
        };
        let ingested = pipeline.ingest(&src).unwrap();
        let stage = pipeline.lint(&ingested).unwrap();
        assert!(stage.report.is_empty(), "{name}: expected a clean report");
    }
}
