//! Property-based tests over the lint passes: arbitrary generated
//! netlists — including ones the generator's `validate()` gate would
//! reject — must never panic the linter, must produce byte-identical
//! reports run to run, and valid circuits must never trip a deny-level
//! finding (otherwise `Pipeline::run` would start rejecting healthy
//! random workloads).

use pl_flow::{random_netlist, CircuitSource, FlowOptions, Pipeline, RandomSpec};
use pl_lint::{lint_netlist, LintOptions};
use pl_sim::DelayModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The netlist pass never panics and is deterministic, even with the
    /// hazard envelopes squeezed far below realistic values (which forces
    /// the fanout/depth lints to actually fire on small circuits).
    #[test]
    fn netlist_pass_never_panics_and_is_deterministic(
        seed in any::<u64>(),
        max_fanout in 1usize..6,
        max_depth in 1u32..5,
    ) {
        let netlist = random_netlist(&RandomSpec::new(seed));
        let opts = LintOptions {
            max_fanout,
            max_depth,
            ..LintOptions::default()
        };
        let first = lint_netlist(&netlist, &[], &DelayModel::default(), &opts);
        for _ in 0..2 {
            let again = lint_netlist(&netlist, &[], &DelayModel::default(), &opts);
            prop_assert_eq!(again.to_text(), first.to_text());
            prop_assert_eq!(again.to_json_lines(), first.to_json_lines());
        }
    }

    /// A full lint session over a random source (both passes, default
    /// options) never denies: every structural deny lint guards an
    /// invariant the generator upholds, so a deny here means a false
    /// positive that would abort healthy `Pipeline::run` workloads.
    #[test]
    fn valid_random_circuits_never_deny(seed in any::<u64>()) {
        let source = CircuitSource::Random(RandomSpec::new(seed));
        let session = Pipeline::new(FlowOptions::default())
            .lint_session(&source)
            .expect("lint session");
        prop_assert!(
            !session.has_deny(),
            "false positive on a valid circuit:\n{}",
            session.render_text()
        );
        prop_assert!(session.pl.is_some());
        let (_, denials) = session.counts();
        prop_assert_eq!(denials, 0);
    }
}
