//! Property-based tests over the whole flow: random circuits must survive
//! mapping, phased-logic conversion and early evaluation with behaviour
//! intact and the marked graph live and safe.

use pl_boolfn::TruthTable;
use pl_core::ee::EeOptions;
use pl_core::marked::{check_liveness, check_safety};
use pl_core::PlNetlist;
use pl_netlist::{Netlist, NodeId};
use pl_sim::{verify_equivalence, DelayModel};
use pl_techmap::{map_to_lut4, MapOptions};
use proptest::prelude::*;

/// Recipe for one random synchronous circuit.
#[derive(Debug, Clone)]
struct CircuitRecipe {
    num_inputs: usize,
    num_dffs: usize,
    luts: Vec<(u64, Vec<usize>)>, // (truth bits, fanin references)
    num_outputs: usize,
}

fn arb_recipe() -> impl Strategy<Value = CircuitRecipe> {
    (2usize..5, 1usize..4, 3usize..24, 1usize..5).prop_flat_map(
        |(num_inputs, num_dffs, num_luts, num_outputs)| {
            let lut = (
                any::<u64>(),
                proptest::collection::vec(any::<usize>(), 1..4),
            );
            proptest::collection::vec(lut, num_luts).prop_map(move |luts| CircuitRecipe {
                num_inputs,
                num_dffs,
                luts,
                num_outputs,
            })
        },
    )
}

/// Deterministically materializes a recipe into a valid netlist: each LUT's
/// fanins reference earlier nodes (modulo), each DFF is driven by some
/// node, outputs tap the last nodes.
fn build(recipe: &CircuitRecipe) -> Netlist {
    let mut n = Netlist::new("random");
    let mut pool: Vec<NodeId> = Vec::new();
    for i in 0..recipe.num_inputs {
        pool.push(n.add_input(format!("i{i}")));
    }
    let dffs: Vec<NodeId> = (0..recipe.num_dffs)
        .map(|k| n.add_dff(k % 2 == 0))
        .collect();
    pool.extend(&dffs);
    for (bits, fanins) in &recipe.luts {
        let srcs: Vec<NodeId> = fanins.iter().map(|&r| pool[r % pool.len()]).collect();
        let table = TruthTable::from_bits(srcs.len(), *bits);
        let id = n
            .add_lut(table, srcs)
            .expect("arity matches by construction");
        pool.push(id);
    }
    for (k, &d) in dffs.iter().enumerate() {
        let src = pool[(k * 7 + 3) % pool.len()];
        n.set_dff_input(d, src).expect("valid ids");
    }
    for k in 0..recipe.num_outputs {
        let src = pool[pool.len() - 1 - (k % pool.len().min(4))];
        n.set_output(format!("o{k}"), src);
    }
    n
}

fn vectors(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n_inputs).map(|_| rng.gen()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits: LUT4 mapping preserves behaviour.
    #[test]
    fn mapping_preserves_behaviour(recipe in arb_recipe()) {
        let sync = build(&recipe);
        prop_assume!(sync.validate().is_ok());
        let mapped = map_to_lut4(&sync, &MapOptions::default()).expect("maps");
        let vecs = vectors(sync.inputs().len(), 24, 99);
        let mut a = pl_netlist::eval::Evaluator::new(&sync).expect("validates");
        let mut b = pl_netlist::eval::Evaluator::new(&mapped).expect("validates");
        for v in &vecs {
            prop_assert_eq!(a.step(v).expect("steps"), b.step(v).expect("steps"));
        }
    }

    /// Random circuits: the PL marked graph is live and safe, and the token
    /// game reproduces the synchronous output stream.
    #[test]
    fn pl_mapping_is_live_safe_equivalent(recipe in arb_recipe()) {
        let sync = build(&recipe);
        prop_assume!(sync.validate().is_ok());
        let mapped = map_to_lut4(&sync, &MapOptions::default()).expect("maps");
        let pl = PlNetlist::from_sync(&mapped).expect("PL maps");
        check_liveness(&pl).expect("live");
        check_safety(&pl).expect("safe");
        let vecs = vectors(mapped.inputs().len(), 16, 7);
        let ok = verify_equivalence(&mapped, &pl, &DelayModel::default(), &vecs)
            .expect("simulates");
        prop_assert!(ok.is_ok(), "diverged: {:?}", ok.err());
    }

    /// Random circuits + EE: still live, safe and equivalent — the core
    /// soundness claim of the transformation.
    #[test]
    fn ee_preserves_everything(recipe in arb_recipe()) {
        let sync = build(&recipe);
        prop_assume!(sync.validate().is_ok());
        let mapped = map_to_lut4(&sync, &MapOptions::default()).expect("maps");
        let report = PlNetlist::from_sync(&mapped)
            .expect("PL maps")
            .with_early_evaluation(&EeOptions::default());
        check_liveness(report.netlist()).expect("live after EE");
        check_safety(report.netlist()).expect("safe after EE");
        let vecs = vectors(mapped.inputs().len(), 16, 13);
        let ok = verify_equivalence(&mapped, report.netlist(), &DelayModel::default(), &vecs)
            .expect("simulates");
        prop_assert!(ok.is_ok(), "EE diverged: {:?}", ok.err());
    }

    /// Random LUT4 masters: every selected trigger is sound (trigger=1
    /// forces the master's output).
    #[test]
    fn triggers_are_sound(bits in any::<u64>(), arr in proptest::collection::vec(0u32..6, 4)) {
        let master = TruthTable::from_bits(4, bits);
        for cand in pl_core::trigger::search_triggers(&master, &arr) {
            let k = cand.support.count_ones();
            for asg in 0..(1u32 << k) {
                if cand.table.eval(asg) {
                    prop_assert!(master.forced_value(cand.support, asg).is_some());
                }
            }
            // Coverage accounting matches the trigger's forced count.
            let forced: u32 = (0..(1u32 << k))
                .filter(|&a| cand.table.eval(a))
                .count() as u32;
            let sup = master.support_size();
            let expect =
                f64::from(forced << (sup - k)) / f64::from(1u32 << sup);
            prop_assert!((cand.coverage - expect).abs() < 1e-12);
        }
    }

    /// The calendar/ladder event queue pops in exactly the binary heap's
    /// order under randomized interleaved push/pop sequences, across
    /// adversarial tick spreads (dense same-tick collisions up to the
    /// full u64 tick domain) — the in-isolation determinism contract the
    /// engine's queue abstraction rests on.
    #[test]
    fn ladder_queue_pops_identically_to_heap(
        ops in proptest::collection::vec((any::<u64>(), 0u32..8), 1..250),
        spread_sel in 0u32..4,
    ) {
        use pl_sim::{EventQueue, QueueKind};
        // Small spreads force dense same-tick bursts (FIFO-within-tick is
        // the contract under test); u64::MAX exercises far-future rungs.
        let spread = [8u64, 1 << 12, 1 << 30, u64::MAX][spread_sel as usize];
        let mut heap = EventQueue::<usize>::new(QueueKind::Heap);
        let mut ladder = EventQueue::<usize>::new(QueueKind::Ladder);
        for (i, &(raw, action)) in ops.iter().enumerate() {
            let tick = if spread == u64::MAX { raw } else { raw % spread };
            // seq = i keeps keys unique and monotone, as the engine does.
            let key = pl_sim::queue::pack_key(tick, i as u64);
            heap.push(key, i);
            ladder.push(key, i);
            if action < 3 {
                // Interleaved pop on ~3/8 of the pushes.
                prop_assert_eq!(heap.pop(), ladder.pop());
            }
            prop_assert_eq!(heap.len(), ladder.len());
        }
        // Drain: the full remaining pop order must match.
        loop {
            let h = heap.pop();
            let l = ladder.pop();
            let done = h.is_none();
            prop_assert_eq!(h, l);
            if done {
                break;
            }
        }
    }

    /// EE with random delay scalings never changes functional results
    /// (delay insensitivity of the transformed netlist).
    #[test]
    fn delay_insensitivity(scale in 1u32..6) {
        let bench = pl_itc99::by_id("b02").expect("exists");
        let gates = (bench.build)().elaborate().expect("elaborates");
        let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("maps");
        let report = PlNetlist::from_sync(&mapped)
            .expect("PL maps")
            .with_early_evaluation(&EeOptions::default());
        let delays = DelayModel::default().scaled(f64::from(scale) * 0.37);
        let vecs = vectors(mapped.inputs().len(), 20, u64::from(scale));
        let ok = verify_equivalence(&mapped, report.netlist(), &delays, &vecs)
            .expect("simulates");
        prop_assert!(ok.is_ok());
    }
}
