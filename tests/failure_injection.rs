//! Failure injection: deliberately corrupt phased-logic netlists,
//! checkpoint encodings, and in-flight resumable sweeps, and prove that
//! the structural checkers, the simulator's dynamic guards, and the
//! crash-recovery machinery catch every class of fault the paper's
//! correctness argument depends on.

use pl_boolfn::TruthTable;
use pl_core::ee::EeOptions;
use pl_core::marked::{check_liveness, check_safety};
use pl_core::{PlArcKind, PlError, PlNetlist};
use pl_netlist::Netlist;
use pl_sim::{DelayModel, FaultPlan, PlSimulator, ResumableOptions, SimCheckpoint, SimError};

fn small_pipeline() -> Netlist {
    let mut n = Netlist::new("pipe");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let g1 = n.add_and2(a, b).unwrap();
    let g2 = n.add_xor2(g1, a).unwrap();
    n.set_output("y", g2);
    n
}

fn ripple(bits: usize) -> Netlist {
    let mut n = Netlist::new("rca");
    let a: Vec<_> = (0..bits).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..bits).map(|i| n.add_input(format!("b{i}"))).collect();
    let mut carry = n.add_const(false);
    for i in 0..bits {
        let cry_t = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let c = n.add_lut(cry_t, vec![a[i], b[i], carry]).unwrap();
        carry = c;
    }
    n.set_output("cout", carry);
    n
}

/// Finds an ack arc whose destination gate has no other in-arc — removing
/// it provably disconnects that gate from every directed circuit.
fn load_bearing_ack(pl: &PlNetlist) -> usize {
    pl.arcs()
        .iter()
        .position(|a| {
            a.kind() == PlArcKind::Ack && {
                let dst = &pl.gates()[a.dst().index()];
                dst.data_in().is_empty() && dst.control_in().len() == 1
            }
        })
        .expect("an input gate with a single consumer exists")
}

/// Removing a load-bearing acknowledge arc breaks the "every signal on a
/// circuit" liveness condition, and the structural checker says so.
/// (Removing a *redundant* ack is harmless — the checker evaluates the
/// whole graph, not the construction's certificates; see
/// `redundant_ack_removal_is_tolerated`.)
#[test]
fn missing_ack_fails_liveness() {
    let sync = small_pipeline();
    let mut pl = PlNetlist::from_sync(&sync).unwrap();
    check_liveness(&pl).expect("intact netlist is live");
    let victim = load_bearing_ack(&pl);
    pl.inject_remove_arc(pl_core::PlArcId::from_index(victim));
    let err = check_liveness(&pl).expect_err("broken net must fail");
    assert!(matches!(err, PlError::ArcNotOnCircuit(_)), "got {err}");
}

/// The same fault blocks simulation at construction time.
#[test]
fn missing_ack_is_caught_at_runtime() {
    let sync = small_pipeline();
    let mut pl = PlNetlist::from_sync(&sync).unwrap();
    let victim = load_bearing_ack(&pl);
    pl.inject_remove_arc(pl_core::PlArcId::from_index(victim));
    match PlSimulator::new(&pl, DelayModel::default()) {
        Err(SimError::Structural(_)) => {}
        other => panic!("expected structural rejection, got {other:?}"),
    }
}

/// Some acknowledge arcs are made redundant by circuits through *other*
/// acks; removing one keeps the graph live and safe and the circuit still
/// computes correctly — demonstrating the checker reasons about the graph
/// itself rather than how it was built.
#[test]
fn redundant_ack_removal_is_tolerated() {
    let sync = small_pipeline();
    let mut pl = PlNetlist::from_sync(&sync).unwrap();
    // The ack g2→g0 (for input a's arc into the AND gate) is covered by
    // the circuit a→AND→XOR→(ack)→a.
    let victim = pl
        .arcs()
        .iter()
        .position(|a| {
            a.kind() == PlArcKind::Ack && !pl.gates()[a.dst().index()].data_in().is_empty()
                || (a.kind() == PlArcKind::Ack
                    && pl.gates()[a.dst().index()].control_in().len() > 1)
        })
        .expect("a redundant ack exists in this topology");
    pl.inject_remove_arc(pl_core::PlArcId::from_index(victim));
    if check_liveness(&pl).is_ok() && check_safety(&pl).is_ok() {
        let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        for k in 0..8u32 {
            let v = vec![k & 1 == 1, k & 2 == 2];
            let out = sim.run_vector(&v).unwrap();
            assert_eq!(out.outputs[0], (v[0] && v[1]) ^ v[0]);
        }
    }
}

/// Removing a *data* arc starves a gate: deadlock, not silence.
#[test]
fn missing_data_arc_deadlocks() {
    let sync = small_pipeline();
    let mut pl = PlNetlist::from_sync(&sync).unwrap();
    let victim = pl
        .arcs()
        .iter()
        .position(|a| a.kind() == PlArcKind::Data)
        .expect("pipeline has data arcs");
    pl.inject_remove_arc(pl_core::PlArcId::from_index(victim));
    // The floating pin is rejected at construction (check_pins), or if a
    // different topology slipped through, the run must deadlock — never
    // produce a wrong answer.
    match PlSimulator::new(&pl, DelayModel::default()) {
        Err(SimError::Structural(e)) => {
            assert!(
                matches!(
                    e,
                    PlError::MissingPinDriver { .. } | PlError::ArcNotOnCircuit(_)
                ),
                "got {e}"
            );
        }
        Ok(mut sim) => match sim.run_vector(&[true, true]) {
            Err(SimError::Deadlock { .. }) => {}
            other => panic!("expected deadlock, got {other:?}"),
        },
        Err(other) => panic!("unexpected construction failure: {other}"),
    }
}

/// An intentionally unsound trigger (fires when the output is NOT forced)
/// trips the simulator's forced-value assertion rather than producing a
/// wrong answer.
#[test]
fn unsound_trigger_is_detected() {
    let sync = ripple(4);
    let report = PlNetlist::from_sync(&sync)
        .unwrap()
        .with_early_evaluation(&EeOptions::default());
    assert!(!report.pairs().is_empty(), "carry chain pairs up");
    // Use the deepest pair: its slow carry arrives well after the trigger,
    // so the early path actually executes (the first pair's carry beats
    // its trigger and would mask the fault behind the normal path).
    let deepest = report.pairs().last().expect("non-empty");
    let master = deepest.master;
    let arity = deepest.candidate.table.num_vars();
    let mut pl = report.into_netlist();
    // Constant-1 trigger: always claims the output is forced.
    pl.inject_trigger_table(master, TruthTable::ones(arity));
    let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
    let n_inputs = pl.input_gates().len();
    let mut saw_unsound = false;
    for k in 0..32u32 {
        let v: Vec<bool> = (0..n_inputs).map(|i| (k >> (i % 8)) & 1 == 1).collect();
        match sim.run_vector(&v) {
            Ok(_) => {}
            Err(SimError::UnsoundTrigger { master: m }) => {
                assert_eq!(m, master);
                saw_unsound = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        saw_unsound,
        "the always-fire trigger must eventually be caught"
    );
}

/// A unique per-test scratch directory, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pl_fi_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A mid-stream checkpoint of the ripple carry chain with a busy event
/// queue (vectors injected but not yet collected).
fn mid_stream_checkpoint(pl: &PlNetlist) -> SimCheckpoint {
    let mut sim = PlSimulator::new(pl, DelayModel::default()).unwrap();
    let n_inputs = pl.input_gates().len();
    for k in 0..3u32 {
        let v: Vec<bool> = (0..n_inputs).map(|i| (k >> (i % 8)) & 1 == 1).collect();
        sim.feed_vector(&v).unwrap();
    }
    sim.snapshot()
}

/// Every corruption class of the checkpoint wire format maps to its own
/// typed error — truncation, foreign magic, version skew, bit rot
/// (checksum), and replay onto the wrong netlist (digest mismatch) —
/// and none of them panics.
#[test]
fn corrupt_checkpoint_bytes_are_rejected_typed() {
    let pl = PlNetlist::from_sync(&ripple(4)).unwrap();
    let delays = DelayModel::default();
    let bytes = mid_stream_checkpoint(&pl).to_bytes(&delays);
    SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &delays).expect("pristine bytes decode");

    // A cut inside the fixed magic+version header is reported as
    // truncation; a longer cut still carries a (stale) trailer and is
    // caught by the whole-file CRC instead — rejected either way.
    assert!(matches!(
        SimCheckpoint::<bool>::from_bytes(&bytes[..7], &pl, &delays),
        Err(SimError::CheckpointTruncated { .. })
    ));
    assert!(matches!(
        SimCheckpoint::<bool>::from_bytes(&bytes[..bytes.len() / 2], &pl, &delays),
        Err(SimError::CheckpointTruncated { .. } | SimError::CheckpointChecksum { .. })
    ));

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        SimCheckpoint::<bool>::from_bytes(&bad_magic, &pl, &delays),
        Err(SimError::CheckpointBadMagic { .. })
    ));

    // The version field sits right after the 8-byte magic; a skew there
    // is reported as such (before any CRC, so no repair needed).
    let mut skewed = bytes.clone();
    skewed[8] = 0xEE;
    assert!(matches!(
        SimCheckpoint::<bool>::from_bytes(&skewed, &pl, &delays),
        Err(SimError::CheckpointVersionSkew { .. })
    ));

    let mut flipped = bytes.clone();
    let mid = bytes.len() / 2;
    flipped[mid] ^= 0x10;
    assert!(matches!(
        SimCheckpoint::<bool>::from_bytes(&flipped, &pl, &delays),
        Err(SimError::CheckpointChecksum { .. })
    ));

    // Pristine bytes, wrong design: the embedded netlist fingerprint
    // refuses the replay.
    let other = PlNetlist::from_sync(&small_pipeline()).unwrap();
    assert!(matches!(
        SimCheckpoint::<bool>::from_bytes(&bytes, &other, &delays),
        Err(SimError::CheckpointDigestMismatch { .. })
    ));
}

/// A resumable sweep killed at a window boundary (simulated by an
/// injected I/O fault on the journal) resumes to a stream bit-identical
/// to the uninterrupted sequential run.
#[test]
fn mid_sweep_kill_then_resume_matches_sequential() {
    let sync = ripple(4);
    let pl = PlNetlist::from_sync(&sync).unwrap();
    let delays = DelayModel::default();
    let n_inputs = pl.input_gates().len();
    let vectors: Vec<Vec<bool>> = (0..20u32)
        .map(|k| (0..n_inputs).map(|i| (k >> (i % 8)) & 1 == 1).collect())
        .collect();
    let baseline = PlSimulator::new(&pl, delays.clone())
        .unwrap()
        .run_stream(&vectors)
        .unwrap();

    let dir = TempDir::new("kill_resume");
    let opts = ResumableOptions {
        window: 4,
        jobs: 2,
        ..ResumableOptions::default()
    };
    // First run dies after 2 windows durably complete.
    let faults = FaultPlan::new();
    faults.halt_after_journal_appends(2);
    let err = pl_sim::sweep_resumable_with_faults(&pl, &delays, &vectors, &dir.0, &opts, &faults)
        .expect_err("the injected halt must surface");
    assert!(matches!(err, SimError::CheckpointIo { .. }), "got {err}");

    // Second run picks up the journal and finishes the stream.
    let resumed = pl_sim::sweep_resumable(
        &pl,
        &delays,
        &vectors,
        &dir.0,
        &ResumableOptions {
            resume: true,
            ..opts
        },
    )
    .unwrap();
    assert!(resumed.recovery.replayed_from_journal >= 2);
    assert_eq!(resumed.outcome.outputs, baseline.outputs);
    assert_eq!(resumed.outcome.makespan, baseline.makespan);
}

/// A window whose worker panics on every attempt exhausts its retry
/// budget and degrades to in-process execution: the failure is recorded
/// in the audit trail, and the outputs are still bit-identical.
#[test]
fn sweep_worker_panic_storm_degrades_without_corruption() {
    let sync = ripple(4);
    let pl = PlNetlist::from_sync(&sync).unwrap();
    let delays = DelayModel::default();
    let n_inputs = pl.input_gates().len();
    let vectors: Vec<Vec<bool>> = (0..16u32)
        .map(|k| (0..n_inputs).map(|i| (k >> (i % 8)) & 1 == 1).collect())
        .collect();
    let baseline = PlSimulator::new(&pl, delays.clone())
        .unwrap()
        .run_stream(&vectors)
        .unwrap();

    let dir = TempDir::new("panic_storm");
    let faults = FaultPlan::new();
    faults.panic_on_window(1, u32::MAX);
    let out = pl_sim::sweep_resumable_with_faults(
        &pl,
        &delays,
        &vectors,
        &dir.0,
        &ResumableOptions {
            window: 4,
            jobs: 2,
            max_retries: 1,
            ..ResumableOptions::default()
        },
        &faults,
    )
    .unwrap();
    // Window 1 must have exhausted its budget; sibling windows staged in
    // the same batch may have been orphaned by the dying workers and
    // degraded too, depending on scheduling — all of it is recorded.
    assert!(out.recovery.degraded_windows >= 1);
    assert!(out
        .recovery
        .worker_failures
        .iter()
        .any(|f| f.window == 1 && f.message.contains("injected fault")));
    assert_eq!(out.outcome.outputs, baseline.outputs);
    assert_eq!(out.outcome.makespan, baseline.makespan);
}

/// Sanity: the uncorrupted versions of the same nets pass everything,
/// proving the tests above fail for the injected reason only.
#[test]
fn control_group_passes() {
    for sync in [small_pipeline(), ripple(4)] {
        let pl = PlNetlist::from_sync(&sync).unwrap();
        check_liveness(&pl).unwrap();
        check_safety(&pl).unwrap();
        let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        let n_inputs = pl.input_gates().len();
        for k in 0..8u32 {
            let v: Vec<bool> = (0..n_inputs).map(|i| (k >> (i % 8)) & 1 == 1).collect();
            sim.run_vector(&v).unwrap();
        }
    }
}
