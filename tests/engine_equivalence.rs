//! Differential equivalence suite for the integer-tick engine rewrite.
//!
//! The rewritten simulator (`pl_sim::PlSimulator`) must be
//! semantics-preserving against the retained pre-refactor engine
//! (`pl_sim::reference::ReferenceSimulator`):
//!
//! * output streams **bit-identical**, per-vector and pipelined,
//! * per-vector latencies equal up to the femtosecond quantization of the
//!   integer clock (tolerance 1e-6 ns = 1 tick),
//!
//! across the ITC'99 suite (with and without early evaluation) and across
//! randomized netlists. The memoized word-parallel trigger search is also
//! pinned candidate-for-candidate to the pre-refactor per-assignment
//! search on every compute gate of real designs.

use pl_bench::{lcg_vectors as vectors, prepared_netlists as itc99_netlists, Lcg};
use pl_core::ee::EeOptions;
use pl_core::trigger::{search_triggers_baseline, TriggerCache};
use pl_core::{PlGateId, PlGateKind, PlNetlist};
use pl_netlist::Netlist;
use pl_sim::{DelayModel, PlSimulator, ReferenceSimulator};
use pl_techmap::{map_to_lut4, MapOptions};

const LATENCY_TOL_NS: f64 = 1e-6; // one femtosecond tick

/// Distinct deterministic seed per benchmark id (the ids share a length,
/// so hashing the bytes — not the length — is what varies the streams).
fn seed_for(id: &str, salt: u64) -> u64 {
    id.bytes().fold(salt, |h, b| {
        h.wrapping_mul(0x100000001B3).wrapping_add(u64::from(b))
    })
}

/// Asserts both engines agree on `pl` for `vecs`, per-vector and streamed.
fn assert_engines_agree(pl: &PlNetlist, vecs: &[Vec<bool>], context: &str) {
    let delays = DelayModel::default();
    let mut new_sim = PlSimulator::new(pl, delays.clone()).expect("new engine builds");
    let mut ref_sim = ReferenceSimulator::new(pl, delays.clone()).expect("reference builds");
    for (i, v) in vecs.iter().enumerate() {
        let rn = new_sim.run_vector(v).expect("new engine simulates");
        let rr = ref_sim.run_vector(v).expect("reference simulates");
        assert_eq!(
            rn.outputs, rr.outputs,
            "{context}: outputs diverged at vector {i}"
        );
        assert!(
            (rn.latency - rr.latency).abs() < LATENCY_TOL_NS,
            "{context}: latency diverged at vector {i}: {} vs {}",
            rn.latency,
            rr.latency
        );
    }
    // Pipelined stream from a fresh state.
    let mut new_sim = PlSimulator::new(pl, delays.clone()).expect("new engine builds");
    let mut ref_sim = ReferenceSimulator::new(pl, delays).expect("reference builds");
    let sn = new_sim.run_stream(vecs).expect("new engine streams");
    let sr = ref_sim.run_stream(vecs).expect("reference streams");
    assert_eq!(
        sn.outputs, sr.outputs,
        "{context}: streamed outputs diverged"
    );
    assert!(
        (sn.makespan - sr.makespan).abs() < LATENCY_TOL_NS,
        "{context}: makespan diverged: {} vs {}",
        sn.makespan,
        sr.makespan
    );
}

#[test]
fn itc99_small_benchmarks_bit_identical() {
    for id in ["b01", "b02", "b03", "b06", "b09", "b10"] {
        let (plain, ee) = itc99_netlists(id);
        let vecs = vectors(plain.input_gates().len(), 16, seed_for(id, 0xA5A5));
        assert_engines_agree(&plain, &vecs, &format!("{id} plain"));
        assert_engines_agree(&ee, &vecs, &format!("{id} ee"));
    }
}

#[test]
fn itc99_medium_benchmarks_bit_identical() {
    for id in ["b04", "b05", "b11", "b12"] {
        let (plain, ee) = itc99_netlists(id);
        let vecs = vectors(plain.input_gates().len(), 6, seed_for(id, 0xB0B0));
        assert_engines_agree(&plain, &vecs, &format!("{id} plain"));
        assert_engines_agree(&ee, &vecs, &format!("{id} ee"));
    }
}

/// One random mapped netlist from the LCG stream — the exact generator
/// behind `pl_flow::CircuitSource::Random` (one definition, so this
/// suite's workload can never desynchronize from the flow's), LUT4-mapped
/// — or `None` when the draw fails validation.
fn random_mapped_netlist(rng: &mut Lcg) -> Option<Netlist> {
    let n = pl_flow::random_netlist_draw(rng)?;
    Some(map_to_lut4(&n, &MapOptions::default()).expect("maps"))
}

/// Random synchronous circuits (the `prop_flow` recipe generator, driven
/// by a plain LCG so the whole suite stays deterministic without dev-deps).
#[test]
fn randomized_netlists_bit_identical() {
    let mut rng = Lcg::new(0xF00D_FACE_CAFE_0001);
    let mut tested = 0;
    while tested < 25 {
        let Some(mapped) = random_mapped_netlist(&mut rng) else {
            continue;
        };
        let plain = PlNetlist::from_sync(&mapped).expect("PL maps");
        let ee = PlNetlist::from_sync(&mapped)
            .expect("PL maps")
            .with_early_evaluation(&EeOptions::default())
            .into_netlist();
        let vecs = vectors(mapped.inputs().len(), 12, rng.next_u64());
        assert_engines_agree(&plain, &vecs, "random plain");
        assert_engines_agree(&ee, &vecs, "random ee");
        tested += 1;
    }
}

/// The memoized word-parallel search must return candidate lists identical
/// to the pre-refactor per-assignment search on every compute gate of a
/// real design (the exact stream `with_early_evaluation` issues).
#[test]
fn memoized_search_identical_on_itc99_gates() {
    for id in ["b05", "b11"] {
        let (plain, _) = itc99_netlists(id);
        let levels = plain.arrival_levels();
        let mut cache = TriggerCache::new();
        let mut gates_checked = 0;
        for (idx, gate) in plain.gates().iter().enumerate() {
            if let PlGateKind::Compute { table } = gate.kind() {
                let arr = plain.pin_arrivals(PlGateId::from_index(idx), &levels);
                let memoized = cache.search(table, &arr).to_vec();
                let direct = search_triggers_baseline(table, &arr);
                assert_eq!(memoized, direct, "{id}: gate {idx} candidates diverged");
                gates_checked += 1;
            }
        }
        assert!(gates_checked > 0, "{id}: no compute gates checked");
        assert!(
            cache.hits() > 0,
            "{id}: netlist workload should repeat LUT classes"
        );
    }
}

/// Memoized search equals direct search on random LUT4 masters (the
/// acceptance wording: identical candidates for random LUT4s).
#[test]
fn memoized_search_identical_on_random_lut4s() {
    let mut rng = Lcg::new(0x7121_66E2);
    let mut cache = TriggerCache::new();
    for _ in 0..300 {
        let master = pl_boolfn::TruthTable::from_bits(4, rng.next_u64() & 0xFFFF);
        let arrivals: Vec<u32> = (0..4).map(|_| rng.below(6) as u32).collect();
        assert_eq!(
            cache.search(&master, &arrivals).to_vec(),
            search_triggers_baseline(&master, &arrivals),
            "candidates diverged for {master:?} arrivals {arrivals:?}"
        );
    }
}

// ---- parallel-vs-sequential determinism -------------------------------
//
// The parallel sweep subsystem (`pl_sim::parallel`) must be a pure
// wall-clock optimization: for every worker count its merged results are
// bit-identical — outputs AND f64 latencies/makespans compared exactly,
// no tolerance — to the sequential single-simulator run of the same
// schedule.

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Sequential baseline for [`pl_sim::sweep_streams`]: one private
/// simulator per stream, run in stream order on the calling thread.
fn sequential_streams(pl: &PlNetlist, streams: &[Vec<Vec<bool>>]) -> Vec<pl_sim::StreamOutcome> {
    streams
        .iter()
        .map(|s| {
            PlSimulator::new(pl, DelayModel::default())
                .expect("builds")
                .run_stream(s)
                .expect("streams")
        })
        .collect()
}

/// Asserts the parallel sweep is bit-identical to the sequential engine
/// on `pl` at every worker count, for both sweep shapes.
fn assert_parallel_matches_sequential(pl: &PlNetlist, streams: &[Vec<Vec<bool>>], context: &str) {
    let delays = DelayModel::default();
    let sequential = sequential_streams(pl, streams);
    for jobs in WORKER_COUNTS {
        let par = pl_sim::sweep_streams(pl, &delays, streams, jobs)
            .unwrap_or_else(|e| panic!("{context}: sweep failed at jobs={jobs}: {e}"));
        // StreamOutcome derives PartialEq over outputs, makespan and
        // throughput — this is an exact (bitwise f64) comparison.
        assert_eq!(par, sequential, "{context}: jobs={jobs} diverged");
    }
    // Sharded single-stream sweep: shard boundaries are jobs-independent,
    // so every worker count must reproduce the jobs=1 merge exactly.
    let flat: Vec<Vec<bool>> = streams.iter().flatten().cloned().collect();
    if !flat.is_empty() {
        let shard_len = (flat.len() / 3).max(1);
        let baseline = pl_sim::sweep_sharded(pl, &delays, &flat, shard_len, 1).expect("shards");
        for jobs in WORKER_COUNTS {
            let par = pl_sim::sweep_sharded(pl, &delays, &flat, shard_len, jobs)
                .unwrap_or_else(|e| panic!("{context}: sharded sweep failed at jobs={jobs}: {e}"));
            assert_eq!(par, baseline, "{context}: sharded jobs={jobs} diverged");
        }
    }
}

/// Per-benchmark deterministic stream set (a few independent streams of
/// varying length, like a multi-seed sweep would issue).
fn sweep_streams_for(pl: &PlNetlist, id: &str) -> Vec<Vec<Vec<bool>>> {
    (0..3)
        .map(|k| {
            vectors(
                pl.input_gates().len(),
                4 + 2 * k,
                seed_for(id, 0xC0DE + k as u64),
            )
        })
        .collect()
}

/// The full ITC'99 suite — b01 through b15, plain and with EE — swept in
/// parallel at 1/2/4/8 workers must be bit-identical to the sequential
/// engine.
#[test]
fn parallel_sweep_bit_identical_on_itc99_suite() {
    for bench in pl_itc99::catalog() {
        let (plain, ee) = itc99_netlists(bench.id);
        let streams = sweep_streams_for(&plain, bench.id);
        assert_parallel_matches_sequential(&plain, &streams, &format!("{} plain", bench.id));
        assert_parallel_matches_sequential(&ee, &streams, &format!("{} ee", bench.id));
    }
}

/// Randomized netlists through the same parallel-vs-sequential harness.
#[test]
fn parallel_sweep_bit_identical_on_random_netlists() {
    let mut rng = Lcg::new(0x5CA7_7E86_A7DE_0002);
    let mut tested = 0;
    while tested < 12 {
        let Some(mapped) = random_mapped_netlist(&mut rng) else {
            continue;
        };
        let plain = PlNetlist::from_sync(&mapped).expect("PL maps");
        let ee = PlNetlist::from_sync(&mapped)
            .expect("PL maps")
            .with_early_evaluation(&EeOptions::default())
            .into_netlist();
        let streams: Vec<Vec<Vec<bool>>> = (0..4)
            .map(|k| vectors(mapped.inputs().len(), 3 + k, rng.next_u64()))
            .collect();
        assert_parallel_matches_sequential(&plain, &streams, "random plain");
        assert_parallel_matches_sequential(&ee, &streams, "random ee");
        tested += 1;
    }
}

// ---- checkpoint/resume + pipelined single-stream determinism -----------
//
// The checkpoint subsystem (`pl_sim::SimCheckpoint`) must be invisible to
// the simulation: a run resumed from a snapshot is bit-identical to the
// uninterrupted run, and the pipelined single-stream sweep built on it
// (`pl_sim::sweep_pipelined` — leader pass + window replay workers) must
// reproduce a sequential `run_stream` exactly — outputs AND f64
// makespans/throughputs compared bitwise — at every (jobs, window).

/// Asserts that snapshotting `pl` after `split` vectors and resuming on a
/// fresh simulator reproduces the uninterrupted per-vector run exactly,
/// and that the snapshot did not perturb the snapshotted simulator.
fn assert_checkpoint_resume_identical(pl: &PlNetlist, vecs: &[Vec<bool>], context: &str) {
    let delays = DelayModel::default();
    let split = vecs.len() / 2;
    let mut base = PlSimulator::new(pl, delays.clone()).expect("builds");
    let reference: Vec<_> = vecs
        .iter()
        .map(|v| {
            let r = base.run_vector(v).expect("simulates");
            (r.outputs, r.latency.to_bits(), r.completed_at.to_bits())
        })
        .collect();

    let mut first = PlSimulator::new(pl, delays.clone()).expect("builds");
    for (v, expect) in vecs[..split].iter().zip(&reference) {
        let r = first.run_vector(v).expect("simulates");
        assert_eq!(
            &(r.outputs, r.latency.to_bits(), r.completed_at.to_bits()),
            expect,
            "{context}: prefix diverged before the snapshot"
        );
    }
    let ck = first.snapshot();
    assert_eq!(ck.rounds(), split as u64, "{context}: rounds miscounted");

    let mut resumed =
        PlSimulator::resume_from(pl, delays.clone(), &ck).expect("checkpoint resumes");
    for (i, (v, expect)) in vecs[split..].iter().zip(&reference[split..]).enumerate() {
        let r = resumed.run_vector(v).expect("simulates");
        assert_eq!(
            &(r.outputs, r.latency.to_bits(), r.completed_at.to_bits()),
            expect,
            "{context}: resumed run diverged at vector {}",
            split + i
        );
    }
    // The snapshot must be a pure read: the original continues identically.
    for (i, (v, expect)) in vecs[split..].iter().zip(&reference[split..]).enumerate() {
        let r = first.run_vector(v).expect("simulates");
        assert_eq!(
            &(r.outputs, r.latency.to_bits(), r.completed_at.to_bits()),
            expect,
            "{context}: snapshot perturbed the original at vector {}",
            split + i
        );
    }
}

/// Asserts the pipelined sweep reproduces `run_stream` bitwise on `pl`
/// for every `(jobs, window)` combination given.
fn assert_pipelined_matches_run_stream(
    pl: &PlNetlist,
    vecs: &[Vec<bool>],
    windows: &[usize],
    jobs_counts: &[usize],
    context: &str,
) {
    let delays = DelayModel::default();
    let baseline = PlSimulator::new(pl, delays.clone())
        .expect("builds")
        .run_stream(vecs)
        .expect("streams");
    for &window in windows {
        for &jobs in jobs_counts {
            let piped =
                pl_sim::sweep_pipelined(pl, &delays, vecs, window, jobs).unwrap_or_else(|e| {
                    panic!("{context}: pipelined sweep failed at window={window} jobs={jobs}: {e}")
                });
            // StreamOutcome's PartialEq covers outputs, makespan and
            // throughput — an exact f64 comparison, no tolerance.
            assert_eq!(
                piped, baseline,
                "{context}: window={window} jobs={jobs} diverged from run_stream"
            );
        }
    }
}

/// Checkpoint/resume across the full ITC'99 suite, plain and with EE.
#[test]
fn checkpoint_resume_bit_identical_on_itc99_suite() {
    for bench in pl_itc99::catalog() {
        let (plain, ee) = itc99_netlists(bench.id);
        let vecs = vectors(plain.input_gates().len(), 6, seed_for(bench.id, 0xCEC4));
        assert_checkpoint_resume_identical(&plain, &vecs, &format!("{} plain", bench.id));
        assert_checkpoint_resume_identical(&ee, &vecs, &format!("{} ee", bench.id));
    }
}

/// Pipelined-vs-sequential across the full ITC'99 suite (plain + EE) at
/// several window sizes and worker counts.
#[test]
fn pipelined_sweep_bit_identical_on_itc99_suite() {
    for bench in pl_itc99::catalog() {
        let (plain, ee) = itc99_netlists(bench.id);
        let vecs = vectors(plain.input_gates().len(), 9, seed_for(bench.id, 0x9199));
        assert_pipelined_matches_run_stream(
            &plain,
            &vecs,
            &[2, 5],
            &[2, 4],
            &format!("{} plain", bench.id),
        );
        assert_pipelined_matches_run_stream(
            &ee,
            &vecs,
            &[2, 5],
            &[2, 4],
            &format!("{} ee", bench.id),
        );
    }
}

/// The small benchmarks additionally sweep the full worker/window grid,
/// including the degenerate single-vector window and a window larger than
/// the whole stream.
#[test]
fn pipelined_sweep_full_grid_on_small_benchmarks() {
    for id in ["b01", "b03", "b06", "b09"] {
        let (plain, ee) = itc99_netlists(id);
        let vecs = vectors(plain.input_gates().len(), 10, seed_for(id, 0x6121D));
        let windows = [1, 2, 3, vecs.len() + 5];
        let jobs = [1, 2, 4, 8];
        assert_pipelined_matches_run_stream(&plain, &vecs, &windows, &jobs, &format!("{id} plain"));
        assert_pipelined_matches_run_stream(&ee, &vecs, &windows, &jobs, &format!("{id} ee"));
    }
}

/// Randomized netlists through the checkpoint and pipelined harnesses.
#[test]
fn checkpoint_and_pipelined_bit_identical_on_random_netlists() {
    let mut rng = Lcg::new(0xC4EC_4501_21D0_0003);
    let mut tested = 0;
    while tested < 8 {
        let Some(mapped) = random_mapped_netlist(&mut rng) else {
            continue;
        };
        let plain = PlNetlist::from_sync(&mapped).expect("PL maps");
        let ee = PlNetlist::from_sync(&mapped)
            .expect("PL maps")
            .with_early_evaluation(&EeOptions::default())
            .into_netlist();
        let vecs = vectors(mapped.inputs().len(), 8, rng.next_u64());
        assert_checkpoint_resume_identical(&plain, &vecs, "random plain");
        assert_checkpoint_resume_identical(&ee, &vecs, "random ee");
        assert_pipelined_matches_run_stream(&plain, &vecs, &[1, 3], &[2, 8], "random plain");
        assert_pipelined_matches_run_stream(&ee, &vecs, &[1, 3], &[2, 8], "random ee");
        tested += 1;
    }
}

// ---- ladder-vs-heap event-queue determinism ----------------------------
//
// The event-queue backend (`pl_sim::QueueKind`) must be a pure
// implementation choice: for every netlist and vector schedule the
// calendar/ladder queue produces outcomes bit-identical — outputs AND f64
// latencies/makespans/timestamps compared exactly — to the binary-heap
// backend, checkpoints are portable between backends in both directions,
// and the pipelined sweep on the ladder reproduces the heap-sequential
// stream at every worker count.

use pl_sim::QueueKind;

/// Per-vector fingerprint used by the cross-backend harnesses: outputs
/// plus exact latency/timestamp bits.
type VectorPrint = (Vec<bool>, u64, u64);

fn run_vectors_fingerprint(sim: &mut PlSimulator<'_>, vecs: &[Vec<bool>]) -> Vec<VectorPrint> {
    vecs.iter()
        .map(|v| {
            let r = sim.run_vector(v).expect("simulates");
            (r.outputs, r.latency.to_bits(), r.completed_at.to_bits())
        })
        .collect()
}

/// Asserts the ladder backend reproduces the heap backend exactly on
/// `pl`: per-vector (latency bits included) and streamed (makespan and
/// throughput bits included).
fn assert_queue_backends_agree(pl: &PlNetlist, vecs: &[Vec<bool>], context: &str) {
    let delays = DelayModel::default();
    let mut heap = PlSimulator::with_queue(pl, delays.clone(), QueueKind::Heap).expect("builds");
    let mut ladder =
        PlSimulator::with_queue(pl, delays.clone(), QueueKind::Ladder).expect("builds");
    assert_eq!(heap.queue_kind(), QueueKind::Heap);
    assert_eq!(ladder.queue_kind(), QueueKind::Ladder);
    let hp = run_vectors_fingerprint(&mut heap, vecs);
    let lp = run_vectors_fingerprint(&mut ladder, vecs);
    assert_eq!(
        hp, lp,
        "{context}: per-vector runs diverged across backends"
    );
    assert_eq!(
        heap.events_processed(),
        ladder.events_processed(),
        "{context}: dispatched-event counts diverged"
    );

    let mut heap = PlSimulator::with_queue(pl, delays.clone(), QueueKind::Heap).expect("builds");
    let mut ladder = PlSimulator::with_queue(pl, delays, QueueKind::Ladder).expect("builds");
    let hs = heap.run_stream(vecs).expect("streams");
    let ls = ladder.run_stream(vecs).expect("streams");
    // StreamOutcome's PartialEq covers outputs, makespan and throughput —
    // an exact (bitwise f64) comparison.
    assert_eq!(hs, ls, "{context}: streamed runs diverged across backends");
}

/// Asserts checkpoints are queue-kind-portable on `pl`: simulate a prefix
/// mid-stream on `from`, snapshot, resume on a fresh `to`-backend
/// simulator, and require the suffix to be bit-identical to the
/// uninterrupted heap run.
fn assert_checkpoint_crosses_backends(
    pl: &PlNetlist,
    vecs: &[Vec<bool>],
    from: QueueKind,
    to: QueueKind,
    context: &str,
) {
    let delays = DelayModel::default();
    let split = vecs.len() / 2;
    let mut base = PlSimulator::new(pl, delays.clone()).expect("builds");
    let reference = run_vectors_fingerprint(&mut base, vecs);

    let mut source = PlSimulator::with_queue(pl, delays.clone(), from).expect("builds");
    let prefix = run_vectors_fingerprint(&mut source, &vecs[..split]);
    assert_eq!(
        prefix,
        reference[..split],
        "{context}: {from} prefix diverged before the snapshot"
    );
    let ck = source.snapshot();

    let mut resumed = PlSimulator::with_queue(pl, delays, to).expect("builds");
    resumed.restore(&ck).expect("checkpoint crosses backends");
    assert_eq!(resumed.queue_kind(), to, "restore must keep the backend");
    let suffix = run_vectors_fingerprint(&mut resumed, &vecs[split..]);
    assert_eq!(
        suffix,
        reference[split..],
        "{context}: {from}->{to} resumed run diverged"
    );
}

/// Ladder-vs-heap bit-identity across the full ITC'99 suite, plain + EE.
#[test]
fn ladder_queue_bit_identical_on_itc99_suite() {
    for bench in pl_itc99::catalog() {
        let (plain, ee) = itc99_netlists(bench.id);
        let vecs = vectors(plain.input_gates().len(), 8, seed_for(bench.id, 0x1ADD));
        assert_queue_backends_agree(&plain, &vecs, &format!("{} plain", bench.id));
        assert_queue_backends_agree(&ee, &vecs, &format!("{} ee", bench.id));
    }
}

/// Ladder-vs-heap bit-identity on randomized netlists.
#[test]
fn ladder_queue_bit_identical_on_random_netlists() {
    let mut rng = Lcg::new(0x1ADD_E270_0000_0005);
    let mut tested = 0;
    while tested < 10 {
        let Some(mapped) = random_mapped_netlist(&mut rng) else {
            continue;
        };
        let plain = PlNetlist::from_sync(&mapped).expect("PL maps");
        let ee = PlNetlist::from_sync(&mapped)
            .expect("PL maps")
            .with_early_evaluation(&EeOptions::default())
            .into_netlist();
        let vecs = vectors(mapped.inputs().len(), 10, rng.next_u64());
        assert_queue_backends_agree(&plain, &vecs, "random plain");
        assert_queue_backends_agree(&ee, &vecs, "random ee");
        tested += 1;
    }
}

/// Checkpoints snapshotted mid-stream on one backend resume bit-identically
/// on the other, in both directions, plain + EE.
#[test]
fn checkpoints_are_queue_kind_portable() {
    for id in ["b01", "b04", "b09", "b13"] {
        let (plain, ee) = itc99_netlists(id);
        let vecs = vectors(plain.input_gates().len(), 8, seed_for(id, 0xCEC4_1ADD));
        for (netlist, label) in [(&plain, "plain"), (&ee, "ee")] {
            assert_checkpoint_crosses_backends(
                netlist,
                &vecs,
                QueueKind::Heap,
                QueueKind::Ladder,
                &format!("{id} {label}"),
            );
            assert_checkpoint_crosses_backends(
                netlist,
                &vecs,
                QueueKind::Ladder,
                QueueKind::Heap,
                &format!("{id} {label}"),
            );
        }
    }
}

/// The pipelined single-stream sweep on the ladder backend reproduces the
/// heap-sequential `run_stream` bitwise at 1/2/4 workers.
#[test]
fn pipelined_sweep_on_ladder_matches_heap_run_stream() {
    for id in ["b03", "b06", "b11", "b14"] {
        let (plain, ee) = itc99_netlists(id);
        let vecs = vectors(plain.input_gates().len(), 8, seed_for(id, 0x1ADD_9199));
        let delays = DelayModel::default();
        for (netlist, label) in [(&plain, "plain"), (&ee, "ee")] {
            let baseline = PlSimulator::with_queue(netlist, delays.clone(), QueueKind::Heap)
                .expect("builds")
                .run_stream(&vecs)
                .expect("streams");
            for jobs in [1, 2, 4] {
                let piped = pl_sim::sweep_pipelined_with_queue(
                    netlist,
                    &delays,
                    &vecs,
                    3,
                    jobs,
                    QueueKind::Ladder,
                )
                .unwrap_or_else(|e| panic!("{id} {label}: ladder pipeline failed: {e}"));
                assert_eq!(
                    piped, baseline,
                    "{id} {label}: ladder pipelined jobs={jobs} diverged from heap run_stream"
                );
            }
        }
    }
}

// ---- word-parallel batch-engine determinism ----------------------------
//
// The 64-lane batch engine (`pl_sim::BatchSimulator`) must be a pure
// throughput optimization: `run_lanes` over up to 64 substreams is
// bit-identical, output word for output word, to running each substream
// on its own scalar simulator from the initial marking. (The contract
// covers values only — the wide EE trigger fires only when *all* lanes
// agree, so per-lane timing may differ from a scalar run.)

use pl_sim::BatchSimulator;
use proptest::prelude::*;

/// Per-benchmark deterministic substream set: `lanes` substreams with
/// ragged lengths (so short lanes exercise the all-false padding).
fn lane_streams_for(pl: &PlNetlist, id: &str, lanes: usize) -> Vec<Vec<Vec<bool>>> {
    (0..lanes)
        .map(|k| {
            vectors(
                pl.input_gates().len(),
                1 + k % 2,
                seed_for(id, 0xBA7C_4000 + k as u64),
            )
        })
        .collect()
}

/// Asserts one `run_lanes` call over `streams` reproduces, lane for lane,
/// the per-substream scalar runs exactly.
fn assert_batch_matches_scalar(pl: &PlNetlist, streams: &[Vec<Vec<bool>>], context: &str) {
    let delays = DelayModel::default();
    let lanes: Vec<&[Vec<bool>]> = streams.iter().map(Vec::as_slice).collect();
    let batch = BatchSimulator::new(pl, delays.clone())
        .expect("batch engine builds")
        .run_lanes(&lanes)
        .unwrap_or_else(|e| panic!("{context}: batch run failed: {e}"));
    assert_eq!(batch.len(), streams.len(), "{context}: outcome count");
    for (lane, (b, s)) in batch.iter().zip(streams).enumerate() {
        let scalar = PlSimulator::new(pl, delays.clone())
            .expect("builds")
            .run_stream(s)
            .expect("streams");
        assert_eq!(
            b.outputs, scalar.outputs,
            "{context}: lane {lane} diverged from its scalar run"
        );
    }
}

/// Full 64-lane blocks across the whole ITC'99 suite — b01 through b15,
/// plain and with EE — must match 64 sequential scalar runs bit for bit.
#[test]
fn batch_engine_bit_identical_on_itc99_suite() {
    for bench in pl_itc99::catalog() {
        let (plain, ee) = itc99_netlists(bench.id);
        let streams = lane_streams_for(&plain, bench.id, 64);
        assert_batch_matches_scalar(&plain, &streams, &format!("{} plain", bench.id));
        assert_batch_matches_scalar(&ee, &streams, &format!("{} ee", bench.id));
    }
}

/// Randomized netlists through the batch-vs-scalar harness, at partial
/// lane occupancy (including empty substreams).
#[test]
fn batch_engine_bit_identical_on_random_netlists() {
    let mut rng = Lcg::new(0xBA7C_4AE5_0000_0007);
    let mut tested = 0;
    while tested < 10 {
        let Some(mapped) = random_mapped_netlist(&mut rng) else {
            continue;
        };
        let plain = PlNetlist::from_sync(&mapped).expect("PL maps");
        let ee = PlNetlist::from_sync(&mapped)
            .expect("PL maps")
            .with_early_evaluation(&EeOptions::default())
            .into_netlist();
        let lanes = 1 + (rng.next_u64() % 64) as usize;
        let streams: Vec<Vec<Vec<bool>>> = (0..lanes)
            .map(|k| vectors(mapped.inputs().len(), k % 5, rng.next_u64()))
            .collect();
        assert_batch_matches_scalar(&plain, &streams, "random plain");
        assert_batch_matches_scalar(&ee, &streams, "random ee");
        tested += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A batch sweep over a vector count NOT divisible by 64 never
    /// panics: the final ragged block (and ragged substream lengths
    /// inside it) must still match the scalar sweep exactly.
    #[test]
    fn ragged_batch_sweep_matches_scalar(
        seed in any::<u64>(),
        total in 1usize..200,
        jobs in 1usize..5,
    ) {
        prop_assume!(total % 64 != 0);
        let mut rng = Lcg::new(seed);
        let mapped = random_mapped_netlist(&mut rng);
        prop_assume!(mapped.is_some());
        let mapped = mapped.unwrap();
        let pl = PlNetlist::from_sync(&mapped).expect("PL maps");
        let delays = DelayModel::default();
        // Stripe `total` vectors 64 ways like the flow's lane protocol
        // does — the last block is ragged by construction.
        let all = vectors(mapped.inputs().len(), total, rng.next_u64());
        let mut subs: Vec<Vec<Vec<bool>>> = vec![Vec::new(); 64];
        for (i, v) in all.iter().enumerate() {
            subs[i % 64].push(v.clone());
        }
        let batch = pl_sim::sweep_streams_batch(&pl, &delays, &subs, jobs)
            .expect("batch sweep runs");
        let scalar = pl_sim::sweep_streams(&pl, &delays, &subs, jobs)
            .expect("scalar sweep runs");
        prop_assert_eq!(batch.len(), scalar.len());
        for (b, s) in batch.iter().zip(&scalar) {
            prop_assert_eq!(&b.outputs, &s.outputs);
        }
    }
}

/// Golden tripwire: fixed vectors through b01 and b06 (plain + EE) must
/// keep producing exactly these output/latency fingerprints. Guards future
/// engine changes against silent semantic drift even if both engines are
/// touched in lockstep.
#[test]
fn golden_fingerprints_hold() {
    fn fingerprint(pl: &PlNetlist, vecs: &[Vec<bool>]) -> u64 {
        let mut sim = PlSimulator::new(pl, DelayModel::default()).expect("builds");
        let mut h = pl_sim::Fnv64::new();
        for v in vecs {
            let r = sim.run_vector(v).expect("simulates");
            for &b in &r.outputs {
                h.mix(u64::from(b));
            }
            h.mix(pl_sim::ns_to_ticks(r.latency));
        }
        h.finish()
    }
    let mut prints = Vec::new();
    for id in ["b01", "b06"] {
        let (plain, ee) = itc99_netlists(id);
        let vecs = vectors(plain.input_gates().len(), 20, 0x601D);
        prints.push(fingerprint(&plain, &vecs));
        prints.push(fingerprint(&ee, &vecs));
    }
    assert_eq!(
        prints,
        vec![
            0x4768_6560_de16_a7ca,
            0x6553_292b_f2aa_bcea,
            0xb4f7_1eb7_c316_7941,
            0x0511_7133_0a02_e981,
        ],
        "golden fingerprints drifted: {prints:#018x?}"
    );
}
