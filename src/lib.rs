//! # phased-logic-ee
//!
//! Facade crate for the reproduction of *"Generalized Early Evaluation in
//! Self-Timed Circuits"* (Thornton, Fazel, Reese, Traver — DATE 2002).
//!
//! Phased Logic (PL) maps a synchronous LUT4+DFF netlist onto a
//! delay-insensitive, clockless network of self-timed gates exchanging
//! LEDR-encoded tokens. The paper's contribution — implemented in
//! `pl_core::ee` — is a *generalized early evaluation* synthesis
//! optimization: each PL gate is paired with a *trigger* gate computing a
//! subfunction over fast-arriving inputs, letting the master fire before its
//! slow inputs arrive whenever the subfunction forces the output.
//!
//! The workspace layers, bottom-up:
//!
//! | crate | role |
//! |---|---|
//! | [`boolfn`] | truth tables, cube lists, ISOP, support-subset enumeration |
//! | [`netlist`] | gate-level IR (LUTs, DFFs, primary IO) |
//! | [`rtl`] | word-level RTL builder that elaborates to gates |
//! | [`techmap`] | cut-based LUT4 technology mapper |
//! | [`core`] | LEDR, PL gates, marked graphs, **early evaluation** |
//! | [`sim`] | discrete-event token simulator + sync reference simulator |
//! | [`itc99`] | re-implemented ITC99 benchmark circuits b01–b15 + vendored BLIF assets |
//! | [`lint`] | static netlist diagnostics with stable `PL####` codes |
//! | [`flow`] | the compile pipeline: pluggable sources, staged compilation |
//!
//! # Architecture: the `pl-flow` pipeline and the `plc` CLI
//!
//! The compile pipeline is a first-class library ([`flow`]), not a
//! benchmark-harness internal. A [`flow::CircuitSource`] (ITC'99 catalog
//! entry, BLIF file/text, pre-built netlist, or seeded random circuit)
//! feeds a [`flow::Pipeline`] of explicit stages,
//!
//! ```text
//! ingest → lint → optimize → techmap → phased → lint → early_eval → simulate → verify
//! ```
//!
//! each returning a typed artifact plus a report with wall-clock timing,
//! so callers can stop at any layer. `pl-bench` regenerates Table 3 as a
//! thin wrapper over [`flow::Pipeline::run`], and the `plc` binary is the
//! command-line face of the same pipeline — it compiles and runs any BLIF
//! netlist end-to-end:
//!
//! ```text
//! $ plc assets/blif/b09.blif --ee --verify
//! [ingest]    assets/blif/b09.blif (blif-file): 2 inputs, 3 outputs, 48 LUTs, 19 DFFs
//! [techmap]   LUT4: 84 -> 25 LUTs, depth 3
//! [phased]    44 gates, 181 arcs (86 feedbacks) — live
//! [early-eval] 9 pairs / 25 compute gates (+20% area)
//! [simulate]  100 vectors ... latency with/without EE ...
//! [verify]    100 vectors match the synchronous reference
//! ```
//!
//! # Quickstart
//!
//! ```
//! use phased_logic_ee::prelude::*;
//!
//! // 1. Describe a circuit at RTL.
//! let mut m = RtlModule::new("demo");
//! let a = m.input_word("a", 4);
//! let b = m.input_word("b", 4);
//! let sum = m.add(&a, &b);
//! m.output_word("sum", &sum);
//!
//! // 2. Elaborate + map to LUT4s.
//! let gates = m.elaborate().expect("elaboration");
//! let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("mapping");
//!
//! // 3. Map to phased logic and add early evaluation.
//! let pl = PlNetlist::from_sync(&mapped).expect("PL mapping");
//! let report = pl.clone().with_early_evaluation(&EeOptions::default());
//! assert!(report.pairs().len() <= pl.num_compute_gates());
//! ```

#![forbid(unsafe_code)]

pub use pl_bench as bench;
pub use pl_boolfn as boolfn;
pub use pl_core as core;
pub use pl_flow as flow;
pub use pl_itc99 as itc99;
pub use pl_lint as lint;
pub use pl_netlist as netlist;
pub use pl_rtl as rtl;
pub use pl_sim as sim;
pub use pl_techmap as techmap;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use pl_boolfn::{Cube, CubeList, TruthTable};
    pub use pl_core::ee::{EeOptions, EeReport};
    pub use pl_core::netlist::PlNetlist;
    pub use pl_flow::{CircuitSource, FlowOptions, Pipeline};
    pub use pl_netlist::Netlist;
    pub use pl_rtl::Module as RtlModule;
    pub use pl_sim::{DelayModel, LatencyStats, PlSimulator, SyncSimulator};
    pub use pl_techmap::{map_to_lut4, MapOptions};
}
