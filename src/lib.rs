//! # phased-logic-ee
//!
//! Facade crate for the reproduction of *"Generalized Early Evaluation in
//! Self-Timed Circuits"* (Thornton, Fazel, Reese, Traver — DATE 2002).
//!
//! Phased Logic (PL) maps a synchronous LUT4+DFF netlist onto a
//! delay-insensitive, clockless network of self-timed gates exchanging
//! LEDR-encoded tokens. The paper's contribution — implemented in
//! `pl_core::ee` — is a *generalized early evaluation* synthesis
//! optimization: each PL gate is paired with a *trigger* gate computing a
//! subfunction over fast-arriving inputs, letting the master fire before its
//! slow inputs arrive whenever the subfunction forces the output.
//!
//! The workspace layers, bottom-up:
//!
//! | crate | role |
//! |---|---|
//! | [`boolfn`] | truth tables, cube lists, ISOP, support-subset enumeration |
//! | [`netlist`] | gate-level IR (LUTs, DFFs, primary IO) |
//! | [`rtl`] | word-level RTL builder that elaborates to gates |
//! | [`techmap`] | cut-based LUT4 technology mapper |
//! | [`core`] | LEDR, PL gates, marked graphs, **early evaluation** |
//! | [`sim`] | discrete-event token simulator + sync reference simulator |
//! | [`itc99`] | re-implemented ITC99 benchmark circuits b01–b15 |
//!
//! # Quickstart
//!
//! ```
//! use phased_logic_ee::prelude::*;
//!
//! // 1. Describe a circuit at RTL.
//! let mut m = RtlModule::new("demo");
//! let a = m.input_word("a", 4);
//! let b = m.input_word("b", 4);
//! let sum = m.add(&a, &b);
//! m.output_word("sum", &sum);
//!
//! // 2. Elaborate + map to LUT4s.
//! let gates = m.elaborate().expect("elaboration");
//! let mapped = map_to_lut4(&gates, &MapOptions::default()).expect("mapping");
//!
//! // 3. Map to phased logic and add early evaluation.
//! let pl = PlNetlist::from_sync(&mapped).expect("PL mapping");
//! let report = pl.clone().with_early_evaluation(&EeOptions::default());
//! assert!(report.pairs().len() <= pl.num_compute_gates());
//! ```

pub use pl_bench as bench;
pub use pl_boolfn as boolfn;
pub use pl_core as core;
pub use pl_itc99 as itc99;
pub use pl_netlist as netlist;
pub use pl_rtl as rtl;
pub use pl_sim as sim;
pub use pl_techmap as techmap;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use pl_boolfn::{Cube, CubeList, TruthTable};
    pub use pl_core::ee::{EeOptions, EeReport};
    pub use pl_core::netlist::PlNetlist;
    pub use pl_netlist::Netlist;
    pub use pl_rtl::Module as RtlModule;
    pub use pl_sim::{DelayModel, LatencyStats, PlSimulator, SyncSimulator};
    pub use pl_techmap::{map_to_lut4, MapOptions};
}
