//! `plc` — the phased-logic compiler.
//!
//! The command-line face of the `pl-flow` pipeline: point it at any BLIF
//! netlist (SIS/ABC dialect) or an ITC'99 catalog id and it runs
//!
//! ```text
//! ingest → lint → optimize → techmap → phased → lint → early_eval → simulate → verify
//! ```
//!
//! printing a per-stage report with timings, early-evaluation statistics
//! (`--ee`), a latency report, and a synchronous cross-check (`--verify`).
//! `--stage` stops the pipeline at any layer; `--emit-blif`, `--verilog`
//! and `--vcd` export artifacts. The lint stages (stable `PL####` codes,
//! see the `pl-lint` crate docs for the catalog) print warnings inline and
//! abort on deny-level findings; tune per code with `--lint-level
//! CODE=allow|warn|deny` or skip them with `--no-lint`. Examples:
//!
//! ```text
//! plc assets/blif/b09.blif --ee --verify --vectors 100
//! plc lint b14                      # diagnostics only, exit 1 on deny
//! plc lint design.blif --json       # machine-readable JSON lines
//! plc eco b04 --ee --edit table:n30:0x6  # incremental recompile
//! ```

use std::process::ExitCode;

use pl_flow::cli::{CliError, CliSpec, OptSpec, PositionalSpec};
use pl_flow::{CircuitSource, EcoEdit, FlowOptions, Pipeline};
use pl_lint::{Code, Severity};

const SPEC: CliSpec = CliSpec {
    bin: "plc",
    about: "compile a BLIF netlist or ITC'99 circuit to phased logic and run it",
    positional: Some(PositionalSpec {
        name: "<file.blif|bXX>",
        help: "BLIF file path, or an ITC'99 catalog id (b01..b15)",
        many: false,
        required: true,
    }),
    options: &[
        OptSpec {
            long: "--ee",
            value: None,
            help: "add early evaluation and compare latency against plain PL",
        },
        OptSpec {
            long: "--verify",
            value: None,
            help: "cross-check outputs against the synchronous reference",
        },
        OptSpec {
            long: "--vectors",
            value: Some("N"),
            help: "random vectors to simulate (default 100)",
        },
        OptSpec {
            long: "--seed",
            value: Some("S"),
            help: "vector-generation seed",
        },
        OptSpec {
            long: "--jobs",
            value: Some("J"),
            help: "worker threads for the variant sweep (0 = one per core)",
        },
        OptSpec {
            long: "--window",
            value: Some("N"),
            help: "stream the vectors through pipelined N-vector windows (checkpoint handoff across --jobs workers; reports makespan/throughput)",
        },
        OptSpec {
            long: "--lanes",
            value: Some("N"),
            help: "stripe the vectors across 64 substreams and sweep them at lane width N: 1 = scalar engines, 64 = the word-parallel batch engine (outputs are bit-identical either way; prints a lane digest)",
        },
        OptSpec {
            long: "--queue",
            value: Some("KIND"),
            help: "event-queue backend for simulation: heap (default) or ladder (calendar queue; results are bit-identical either way)",
        },
        OptSpec {
            long: "--checkpoint-dir",
            value: Some("DIR"),
            help: "make the streamed sweep crash-resumable: write window checkpoints and a completed-window journal under DIR (plain/ and ee/ subtrees; requires --window)",
        },
        OptSpec {
            long: "--resume",
            value: None,
            help: "resume an interrupted sweep from --checkpoint-dir (a fresh run refuses a directory that already holds one)",
        },
        OptSpec {
            long: "--max-retries",
            value: Some("N"),
            help: "worker re-attempts per sweep window before in-process fallback (default 2; requires --checkpoint-dir)",
        },
        OptSpec {
            long: "--threshold",
            value: Some("T"),
            help: "EE cost threshold (Equation 1; default 0 = all speedups)",
        },
        OptSpec {
            long: "--optimize",
            value: None,
            help: "run netlist cleanup passes before mapping",
        },
        OptSpec {
            long: "--lut-size",
            value: Some("K"),
            help: "target LUT arity for technology mapping (2..=6, default 4)",
        },
        OptSpec {
            long: "--lint-level",
            value: Some("CODE=SEV"),
            help: "override a lint code's severity (allow|warn|deny), e.g. PL0006=allow; repeatable",
        },
        OptSpec {
            long: "--no-lint",
            value: None,
            help: "skip both lint passes (static diagnostics run by default)",
        },
        OptSpec {
            long: "--stage",
            value: Some("NAME"),
            help: "stop after ingest|lint|optimize|techmap|phased|early-eval|simulate",
        },
        OptSpec {
            long: "--emit-blif",
            value: Some("PATH"),
            help: "write the ingested (pre-map) netlist as BLIF",
        },
        OptSpec {
            long: "--verilog",
            value: None,
            help: "print the LUT-mapped netlist as structural Verilog",
        },
        OptSpec {
            long: "--vcd",
            value: Some("PATH"),
            help: "write an 8-vector token waveform VCD of the plain PL netlist",
        },
    ],
};

/// The `plc lint` subcommand: both lint passes over one design, rendered
/// as text or JSON lines, exit 1 on any deny-level finding.
const LINT_SPEC: CliSpec = CliSpec {
    bin: "plc lint",
    about: "run the static netlist diagnostics (both passes) and report every finding",
    positional: Some(PositionalSpec {
        name: "<file.blif|bXX>",
        help: "BLIF file path, or an ITC'99 catalog id (b01..b15)",
        many: false,
        required: true,
    }),
    options: &[
        OptSpec {
            long: "--json",
            value: None,
            help: "print findings as JSON lines instead of text",
        },
        OptSpec {
            long: "--lint-level",
            value: Some("CODE=SEV"),
            help:
                "override a lint code's severity (allow|warn|deny), e.g. PL0006=allow; repeatable",
        },
        OptSpec {
            long: "--max-fanout",
            value: Some("N"),
            help: "fanout envelope for PL0101/PL0204 (default 64)",
        },
        OptSpec {
            long: "--max-depth",
            value: Some("N"),
            help: "combinational-depth envelope for PL0102 (default 128)",
        },
        OptSpec {
            long: "--optimize",
            value: None,
            help: "run netlist cleanup passes before the phased-logic pass",
        },
        OptSpec {
            long: "--lut-size",
            value: Some("K"),
            help: "target LUT arity for the phased-logic pass (2..=6, default 4)",
        },
    ],
};

/// The `plc eco` subcommand: compile once, hold the session, then apply
/// each `--edit` as its own incremental recompile with deterministic
/// digest lines (the CI ECO smoke diffs the `outputs digest` line against
/// a from-scratch compile of the edited netlist).
const ECO_SPEC: CliSpec = CliSpec {
    bin: "plc eco",
    about: "compile once, then apply ECO edits with incremental recompilation",
    positional: Some(PositionalSpec {
        name: "<file.blif|bXX>",
        help: "BLIF file path, or an ITC'99 catalog id (b01..b15)",
        many: false,
        required: true,
    }),
    options: &[
        OptSpec {
            long: "--edit",
            value: Some("SPEC"),
            help: "one ECO edit, applied in order and incrementally recompiled: table:<node>:<hexbits> | rewire:<node>:<pin>:<src> | insert:<name>:<hexbits>:<src>[,<src>...] | remove:<node>; repeatable",
        },
        OptSpec {
            long: "--ee",
            value: None,
            help: "run the early-evaluation stage (trigger cache persists across edits)",
        },
        OptSpec {
            long: "--verify",
            value: None,
            help: "cross-check outputs against the synchronous reference",
        },
        OptSpec {
            long: "--vectors",
            value: Some("N"),
            help: "random vectors to simulate (default 100)",
        },
        OptSpec {
            long: "--seed",
            value: Some("S"),
            help: "vector-generation seed",
        },
        OptSpec {
            long: "--optimize",
            value: None,
            help: "run netlist cleanup passes before mapping (disables cut reuse: cleanup renumbers globally)",
        },
        OptSpec {
            long: "--lut-size",
            value: Some("K"),
            help: "target LUT arity for technology mapping (2..=6, default 4)",
        },
        OptSpec {
            long: "--lint-level",
            value: Some("CODE=SEV"),
            help:
                "override a lint code's severity (allow|warn|deny), e.g. PL0006=allow; repeatable",
        },
        OptSpec {
            long: "--no-lint",
            value: None,
            help: "skip both lint passes (static diagnostics run by default)",
        },
        OptSpec {
            long: "--emit-blif",
            value: Some("PATH"),
            help: "write the final edited (pre-map) netlist as BLIF",
        },
    ],
};

/// The `plc serve` subcommand: run the `pld` daemon (see the `pl-serve`
/// crate) — compile once, answer many concurrent sessions from an LRU
/// cache of warm compiled netlists.
const SERVE_SPEC: CliSpec = CliSpec {
    bin: "plc serve",
    about: "run the pld simulation daemon (compiled-netlist LRU cache over TCP)",
    positional: None,
    options: &[
        OptSpec {
            long: "--addr",
            value: Some("HOST"),
            help: "address to bind (default 127.0.0.1)",
        },
        OptSpec {
            long: "--port",
            value: Some("P"),
            help: "port to bind (default 0 = ephemeral; the bound address is printed as 'pld: listening on ...')",
        },
        OptSpec {
            long: "--cache-entries",
            value: Some("N"),
            help: "LRU capacity of the compiled-netlist cache (default 8)",
        },
    ],
};

/// The `plc client` subcommand: one request against a running `pld`
/// daemon, printing the same deterministic digest lines as an
/// in-process run.
const CLIENT_SPEC: CliSpec = CliSpec {
    bin: "plc client",
    about: "send one request to a running pld daemon and print its digest lines",
    positional: Some(PositionalSpec {
        name: "<host:port> [file.blif|bXX]",
        help: "daemon address, then (unless --stats/--shutdown) the design: a local BLIF file (shipped inline) or a server-side spec",
        many: true,
        required: true,
    }),
    options: &[
        OptSpec {
            long: "--edit",
            value: Some("SPEC"),
            help: "apply ECO edits against the warm cache entry instead of a plain compile; same grammar as plc eco, repeatable",
        },
        OptSpec {
            long: "--ee",
            value: None,
            help: "add early evaluation",
        },
        OptSpec {
            long: "--verify",
            value: None,
            help: "cross-check outputs against the synchronous reference",
        },
        OptSpec {
            long: "--vectors",
            value: Some("N"),
            help: "random vectors to simulate (default 100)",
        },
        OptSpec {
            long: "--seed",
            value: Some("S"),
            help: "vector-generation seed",
        },
        OptSpec {
            long: "--jobs",
            value: Some("J"),
            help: "worker threads for the sweep",
        },
        OptSpec {
            long: "--window",
            value: Some("N"),
            help: "streamed protocol with N-vector windows",
        },
        OptSpec {
            long: "--lanes",
            value: Some("N"),
            help: "lane protocol at width N (1 or 64)",
        },
        OptSpec {
            long: "--queue",
            value: Some("KIND"),
            help: "event-queue backend: heap (default) or ladder",
        },
        OptSpec {
            long: "--threshold",
            value: Some("T"),
            help: "EE cost threshold (requires --ee)",
        },
        OptSpec {
            long: "--optimize",
            value: None,
            help: "run netlist cleanup passes before mapping",
        },
        OptSpec {
            long: "--lut-size",
            value: Some("K"),
            help: "target LUT arity for technology mapping (2..=6, default 4)",
        },
        OptSpec {
            long: "--no-lint",
            value: None,
            help: "skip both lint passes",
        },
        OptSpec {
            long: "--stats",
            value: None,
            help: "print the daemon's cache/error counters and exit",
        },
        OptSpec {
            long: "--shutdown",
            value: None,
            help: "ask the daemon to shut down and exit",
        },
    ],
};

/// How far down the pipeline to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Stage {
    Ingest,
    Lint,
    Optimize,
    Techmap,
    Phased,
    EarlyEval,
    Simulate,
}

fn parse_stage(name: &str) -> Option<Stage> {
    match name {
        "ingest" => Some(Stage::Ingest),
        "lint" => Some(Stage::Lint),
        "optimize" => Some(Stage::Optimize),
        "techmap" | "map" => Some(Stage::Techmap),
        "phased" => Some(Stage::Phased),
        "early-eval" | "early_eval" | "ee" => Some(Stage::EarlyEval),
        "simulate" | "sim" => Some(Stage::Simulate),
        _ => None,
    }
}

/// Parses repeated `--lint-level CODE=SEVERITY` values.
fn parse_lint_levels(specs: &[&str]) -> Result<Vec<(Code, Severity)>, String> {
    specs
        .iter()
        .map(|s| {
            let (code, sev) = s
                .split_once('=')
                .ok_or_else(|| format!("--lint-level expects CODE=SEVERITY, got '{s}'"))?;
            Ok((
                code.parse::<Code>()
                    .map_err(|e| format!("--lint-level: {e}"))?,
                sev.parse::<Severity>()
                    .map_err(|e| format!("--lint-level: {e}"))?,
            ))
        })
        .collect()
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("lint") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        return lint_main(&argv);
    }
    if std::env::args().nth(1).as_deref() == Some("eco") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        return eco_main(&argv);
    }
    if std::env::args().nth(1).as_deref() == Some("serve") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        return serve_main(&argv);
    }
    if std::env::args().nth(1).as_deref() == Some("client") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        return client_main(&argv);
    }
    let args = SPEC.parse_env();
    let spec = args.positionals[0].clone();
    let stop_after = match args.get("--stage") {
        None => Stage::Simulate,
        Some(name) => match parse_stage(name) {
            Some(s) => s,
            None => {
                eprintln!("error: unknown stage '{name}'\n");
                eprintln!("{}", SPEC.help());
                return ExitCode::from(2);
            }
        },
    };

    let mut opts = FlowOptions::default();
    opts.vectors = args.value_or("--vectors", opts.vectors);
    opts.seed = args.value_or("--seed", opts.seed);
    opts.jobs = args.value_or("--jobs", opts.jobs);
    opts.ee_enabled = args.flag("--ee");
    opts.verify = args.flag("--verify");
    opts.optimize = args.flag("--optimize");
    opts.map.lut_size = args.value_or("--lut-size", opts.map.lut_size);
    if let Some(t) = args.value_opt::<f64>("--threshold") {
        opts.ee.cost_threshold = t;
    }
    if let Some(q) = args.value_opt::<pl_flow::QueueKind>("--queue") {
        opts.queue = q;
    }
    opts.window = args.value_opt::<usize>("--window");
    opts.lanes = args.value_opt::<usize>("--lanes");
    opts.checkpoint_dir = args.get("--checkpoint-dir").map(std::path::PathBuf::from);
    opts.resume = args.flag("--resume");
    opts.max_retries = args.value_opt::<u32>("--max-retries");
    opts.lint.enabled = !args.flag("--no-lint");
    match parse_lint_levels(&args.get_all("--lint-level")) {
        Ok(levels) => opts.lint.overrides = levels,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", SPEC.help());
            return ExitCode::from(2);
        }
    }
    if let Err(msg) = check_flag_consistency(&args, stop_after, &opts) {
        eprintln!("error: {msg}\n");
        eprintln!("{}", SPEC.help());
        return ExitCode::from(2);
    }

    match drive(&spec, &args, stop_after, opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("plc: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `plc lint` subcommand: run [`Pipeline::lint_session`] (never aborts
/// on findings), print the rendered report, exit 1 when anything denied.
fn lint_main(argv: &[String]) -> ExitCode {
    let args = match LINT_SPEC.parse(argv) {
        Ok(parsed) => parsed,
        Err(CliError::Help(text)) => {
            println!("{text}");
            return ExitCode::SUCCESS;
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", LINT_SPEC.help());
            return ExitCode::from(2);
        }
    };
    let mut opts = FlowOptions {
        optimize: args.flag("--optimize"),
        ..FlowOptions::default()
    };
    opts.map.lut_size = args.value_or("--lut-size", opts.map.lut_size);
    opts.lint.max_fanout = args.value_or("--max-fanout", opts.lint.max_fanout);
    opts.lint.max_depth = args.value_or("--max-depth", opts.lint.max_depth);
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}\n");
        eprintln!("{}", LINT_SPEC.help());
        ExitCode::from(2)
    };
    match parse_lint_levels(&args.get_all("--lint-level")) {
        Ok(levels) => opts.lint.overrides = levels,
        Err(msg) => return usage_error(&msg),
    }
    if let Err(pl_flow::FlowError::Options { message }) = opts.validate() {
        return usage_error(&message);
    }
    let source = CircuitSource::from_spec(&args.positionals[0]);
    let pipeline = Pipeline::new(opts);
    match pipeline.lint_session(&source) {
        Ok(session) => {
            if args.flag("--json") {
                print!("{}", session.render_json_lines());
            } else {
                print!("{}", session.render_text());
            }
            if session.has_deny() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("plc: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `plc eco` subcommand: open an [`pl_flow::EcoSession`], apply each
/// `--edit` as its own incremental recompile, and print per-edit reuse
/// accounting plus deterministic digest lines.
fn eco_main(argv: &[String]) -> ExitCode {
    let args = match ECO_SPEC.parse(argv) {
        Ok(parsed) => parsed,
        Err(CliError::Help(text)) => {
            println!("{text}");
            return ExitCode::SUCCESS;
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", ECO_SPEC.help());
            return ExitCode::from(2);
        }
    };
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}\n");
        eprintln!("{}", ECO_SPEC.help());
        ExitCode::from(2)
    };
    let mut opts = FlowOptions::default();
    opts.vectors = args.value_or("--vectors", opts.vectors);
    opts.seed = args.value_or("--seed", opts.seed);
    opts.ee_enabled = args.flag("--ee");
    opts.verify = args.flag("--verify");
    opts.optimize = args.flag("--optimize");
    opts.map.lut_size = args.value_or("--lut-size", opts.map.lut_size);
    opts.lint.enabled = !args.flag("--no-lint");
    match parse_lint_levels(&args.get_all("--lint-level")) {
        Ok(levels) => opts.lint.overrides = levels,
        Err(msg) => return usage_error(&msg),
    }
    if let Err(pl_flow::FlowError::Options { message }) = opts.validate() {
        return usage_error(&message);
    }
    let mut edits: Vec<(String, EcoEdit)> = Vec::new();
    for spec in args.get_all("--edit") {
        match EcoEdit::parse(spec) {
            Ok(edit) => edits.push((spec.to_string(), edit)),
            Err(e) => return usage_error(&e.to_string()),
        }
    }

    match run_eco(&args.positionals[0], &edits, args.get("--emit-blif"), opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("plc: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Drives one ECO session: initial compile, then one incremental
/// recompile per edit, digest lines after each.
fn run_eco(
    spec: &str,
    edits: &[(String, EcoEdit)],
    emit_blif: Option<&str>,
    opts: FlowOptions,
) -> Result<(), Box<dyn std::error::Error>> {
    let source = CircuitSource::from_spec(spec);
    let pipeline = Pipeline::new(opts);
    let mut session = pipeline.eco_session(&source)?;
    {
        let art = session.artifacts();
        println!(
            "[compile]   {}: {} LUTs, {} PL gates, {} EE pairs  ({:.3}s)",
            session.name(),
            art.report.techmap.luts_after,
            art.report.phased.logic_gates,
            art.pairs.len(),
            art.report.total_secs(),
        );
        print_eco_digest(
            art.mapped.fingerprint(),
            art.plain.fingerprint(),
            &art.outputs,
        );
    }
    for (i, (text, edit)) in edits.iter().enumerate() {
        let out = session.apply_eco(std::slice::from_ref(edit))?;
        let e = &out.eco;
        let downstream = if e.downstream_skipped {
            "downstream reused".to_string()
        } else if pipeline.opts().ee_enabled {
            format!("cache {}h/{}m", e.trigger_hits, e.trigger_misses)
        } else {
            "downstream recomputed".to_string()
        };
        println!(
            "[eco {}]     {}: {} dirty node(s) ({} output(s), {} boundary DFF(s)), cuts reused {}/{}, {}  ({:.3}s)",
            i + 1,
            text,
            e.dirty_nodes,
            e.dirty_outputs.len(),
            e.boundary_dffs,
            e.cuts_reused,
            e.two_nodes,
            downstream,
            e.secs,
        );
        if let Some(lint) = &out.flow.lint {
            let (warns, _) = lint.report.counts();
            if warns > 0 {
                print_lint_stage("[lint]     ", lint);
            }
        }
        print_eco_digest(
            e.mapped_fingerprint,
            e.phased_fingerprint,
            &session.artifacts().outputs,
        );
    }
    if let Some(path) = emit_blif {
        let blif = pl_netlist::blif::to_blif(session.netlist())?;
        std::fs::write(path, &blif)?;
        println!("[eco]       wrote {path} ({} bytes)", blif.len());
    }
    Ok(())
}

/// Prints one compile's deterministic digest block. The `outputs digest`
/// line is the cross-compile comparison point: an incremental recompile
/// and a from-scratch compile of the same edited netlist print identical
/// lines (the mapped/phased fingerprints additionally pin the netlist
/// bits, but survive BLIF round-trips only if node ids do). The format
/// lives in `pl_serve::render_digest_block`, shared with the `pld`
/// daemon's client so server responses diff cleanly against in-process
/// runs.
fn print_eco_digest(mapped_fp: u64, phased_fp: u64, outputs: &[Vec<bool>]) {
    print!(
        "{}",
        pl_serve::render_digest_block(mapped_fp, phased_fp, pl_serve::outputs_digest(outputs))
    );
}

/// The `plc serve` subcommand: bind, announce, and serve until a client
/// sends `--shutdown`.
fn serve_main(argv: &[String]) -> ExitCode {
    let args = match SERVE_SPEC.parse(argv) {
        Ok(parsed) => parsed,
        Err(CliError::Help(text)) => {
            println!("{text}");
            return ExitCode::SUCCESS;
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", SERVE_SPEC.help());
            return ExitCode::from(2);
        }
    };
    let host = args.get("--addr").unwrap_or("127.0.0.1").to_string();
    let port: u16 = args.value_or("--port", 0);
    let config = pl_serve::ServerConfig {
        cache_entries: args.value_or("--cache-entries", 8),
        ..pl_serve::ServerConfig::default()
    };
    let run = || -> Result<(), pl_serve::ServeError> {
        let server = pl_serve::PldServer::bind(&format!("{host}:{port}"), &config)?;
        // The parseable handshake line: smoke tests and wrapper scripts
        // read the bound (possibly ephemeral) address from it.
        println!("pld: listening on {}", server.local_addr()?);
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        server.serve()?;
        println!("pld: shut down");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("plc: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `plc client` subcommand: one request, digest lines rendered with
/// the same shared helper `plc eco` prints through.
fn client_main(argv: &[String]) -> ExitCode {
    let args = match CLIENT_SPEC.parse(argv) {
        Ok(parsed) => parsed,
        Err(CliError::Help(text)) => {
            println!("{text}");
            return ExitCode::SUCCESS;
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", CLIENT_SPEC.help());
            return ExitCode::from(2);
        }
    };
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}\n");
        eprintln!("{}", CLIENT_SPEC.help());
        ExitCode::from(2)
    };
    let request = match build_client_request(&args) {
        Ok(r) => r,
        Err(msg) => return usage_error(&msg),
    };
    match run_client(&args.positionals[0], &request) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("plc: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Maps the `plc client` flags onto a protocol request — the same
/// wiring as the in-process subcommands, so equal flags mean equal
/// digests.
fn build_client_request(args: &pl_flow::cli::ParsedArgs) -> Result<pl_serve::Request, String> {
    use pl_serve::{DesignSpec, Request, RequestOptions};
    if args.flag("--shutdown") {
        return Ok(Request::Shutdown);
    }
    if args.flag("--stats") {
        return Ok(Request::Stats);
    }
    let Some(design) = args.positionals.get(1) else {
        return Err("a design is required unless --stats or --shutdown is given".to_string());
    };
    let mut options = RequestOptions::default();
    options.vectors = args.value_or("--vectors", options.vectors);
    options.seed = args.value_or("--seed", options.seed);
    options.jobs = args.value_or("--jobs", options.jobs);
    options.lut_size = args.value_or("--lut-size", options.lut_size);
    if let Some(t) = args.value_opt::<f64>("--threshold") {
        options.threshold = t;
    }
    if let Some(q) = args.value_opt::<pl_flow::QueueKind>("--queue") {
        options.queue = q;
    }
    options.ee = args.flag("--ee");
    options.verify = args.flag("--verify");
    options.optimize = args.flag("--optimize");
    options.no_lint = args.flag("--no-lint");
    options.window = args.value_opt::<usize>("--window");
    options.lanes = args.value_opt::<usize>("--lanes");
    // A locally readable BLIF file is shipped inline (the daemon need
    // not share a filesystem); anything else is a server-side spec
    // (catalog id, `rand:` spec, or a path on the daemon's host).
    let path = std::path::Path::new(design);
    let design = if path.extension().is_some_and(|e| e == "blif") && path.is_file() {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{design}': {e}"))?;
        let name = path
            .file_stem()
            .map_or_else(|| design.to_string(), |s| s.to_string_lossy().into_owned());
        DesignSpec::BlifText { name, text }
    } else {
        DesignSpec::Spec(design.to_string())
    };
    let edits: Vec<String> = args
        .get_all("--edit")
        .iter()
        .map(|s| s.to_string())
        .collect();
    Ok(if edits.is_empty() {
        Request::Compile { design, options }
    } else {
        Request::Eco {
            design,
            options,
            edits,
        }
    })
}

/// Sends one request and renders the response.
fn run_client(addr: &str, request: &pl_serve::Request) -> Result<(), Box<dyn std::error::Error>> {
    use pl_serve::{render_digest_block, Response};
    let mut client = pl_serve::Client::connect(addr)?;
    match client.expect_ok(request)? {
        Response::CompileOk {
            name,
            cache_hit,
            luts,
            gates,
            pairs,
            digest,
        } => {
            println!(
                "[compile]   {name}: {luts} LUTs, {gates} PL gates, {pairs} EE pairs  (cache {})",
                if cache_hit { "hit" } else { "miss" },
            );
            print!(
                "{}",
                render_digest_block(digest.mapped_fp, digest.phased_fp, digest.outputs_digest)
            );
        }
        Response::EcoOk {
            name,
            cache_hit,
            initial,
            edits,
        } => {
            println!(
                "[compile]   {name}  (cache {})",
                if cache_hit { "hit" } else { "miss" },
            );
            print!(
                "{}",
                render_digest_block(initial.mapped_fp, initial.phased_fp, initial.outputs_digest)
            );
            for (i, e) in edits.iter().enumerate() {
                println!(
                    "[eco {}]     {}: {} dirty node(s)",
                    i + 1,
                    e.spec,
                    e.dirty_nodes
                );
                print!(
                    "{}",
                    render_digest_block(
                        e.digest.mapped_fp,
                        e.digest.phased_fp,
                        e.digest.outputs_digest
                    )
                );
            }
        }
        Response::StatsOk(s) => {
            println!(
                "pld stats: entries {}/{} | hits {} | misses {} | evictions {} | eco edits {} | malformed {}",
                s.entries, s.capacity, s.hits, s.misses, s.evictions, s.eco_edits, s.malformed,
            );
        }
        Response::ShutdownOk => println!("pld: shutdown acknowledged"),
        Response::Error { .. } => unreachable!("expect_ok maps error frames"),
    }
    Ok(())
}

/// Rejects flag combinations that would otherwise be silently ignored:
/// an export/check flag whose stage is cut off by `--stage`, a
/// `--threshold` without the EE stage it configures, or a LUT arity the
/// mapper would reject with a panic instead of a usage error.
///
/// Option-level combinations (lane widths, checkpoint/resume wiring,
/// LUT arity, window bounds) are delegated to
/// [`FlowOptions::validate`], which phrases its messages with these
/// flag names — the CLI and programmatic paths reject identically.
/// Only the checks that need the raw argv (stage gating, flags with a
/// CLI-only meaning) stay here.
fn check_flag_consistency(
    args: &pl_flow::cli::ParsedArgs,
    stop_after: Stage,
    opts: &FlowOptions,
) -> Result<(), String> {
    opts.validate().map_err(|e| match e {
        pl_flow::FlowError::Options { message } => message,
        other => other.to_string(),
    })?;
    // `--seed` feeds the simulate stage, except that a `--vcd` export
    // already consumes it at the phased stage.
    let (seed_stage, seed_stage_name) = if args.get("--vcd").is_some() {
        (Stage::Phased, "phased")
    } else {
        (Stage::Simulate, "simulate")
    };
    let needs: [(&str, bool, Stage, &str); 17] = [
        (
            "--lanes",
            args.get("--lanes").is_some(),
            Stage::Simulate,
            "simulate",
        ),
        ("--no-lint", args.flag("--no-lint"), Stage::Lint, "lint"),
        (
            "--lint-level",
            !args.get_all("--lint-level").is_empty(),
            Stage::Lint,
            "lint",
        ),
        (
            "--window",
            args.get("--window").is_some(),
            Stage::Simulate,
            "simulate",
        ),
        (
            "--queue",
            args.get("--queue").is_some(),
            Stage::Simulate,
            "simulate",
        ),
        (
            "--optimize",
            args.flag("--optimize"),
            Stage::Optimize,
            "optimize",
        ),
        (
            "--lut-size",
            args.get("--lut-size").is_some(),
            Stage::Techmap,
            "techmap",
        ),
        (
            "--verilog",
            args.flag("--verilog"),
            Stage::Techmap,
            "techmap",
        ),
        (
            "--vcd",
            args.get("--vcd").is_some(),
            Stage::Phased,
            "phased",
        ),
        ("--ee", args.flag("--ee"), Stage::EarlyEval, "early-eval"),
        (
            "--verify",
            args.flag("--verify"),
            Stage::Simulate,
            "simulate",
        ),
        (
            "--vectors",
            args.get("--vectors").is_some(),
            Stage::Simulate,
            "simulate",
        ),
        (
            "--jobs",
            args.get("--jobs").is_some(),
            Stage::Simulate,
            "simulate",
        ),
        (
            "--seed",
            args.get("--seed").is_some(),
            seed_stage,
            seed_stage_name,
        ),
        (
            "--checkpoint-dir",
            args.get("--checkpoint-dir").is_some(),
            Stage::Simulate,
            "simulate",
        ),
        (
            "--resume",
            args.flag("--resume"),
            Stage::Simulate,
            "simulate",
        ),
        (
            "--max-retries",
            args.get("--max-retries").is_some(),
            Stage::Simulate,
            "simulate",
        ),
    ];
    for (flag, given, stage, stage_name) in needs {
        if given && stop_after < stage {
            return Err(format!(
                "{flag} has no effect when --stage stops before {stage_name}"
            ));
        }
    }
    if args.get("--threshold").is_some() && !args.flag("--ee") {
        return Err("--threshold requires --ee (it configures the EE stage)".to_string());
    }
    if !args.get_all("--lint-level").is_empty() && args.flag("--no-lint") {
        return Err("--lint-level has no effect with --no-lint (the lint stage is skipped)".into());
    }
    if args.flag("--no-lint") && stop_after == Stage::Lint {
        return Err("--no-lint contradicts --stage lint (stopping after a skipped stage)".into());
    }
    Ok(())
}

/// Runs the pipeline stage by stage, printing each report as it lands.
fn drive(
    spec: &str,
    args: &pl_flow::cli::ParsedArgs,
    stop_after: Stage,
    opts: FlowOptions,
) -> Result<(), Box<dyn std::error::Error>> {
    let source = CircuitSource::from_spec(spec);
    let pipeline = Pipeline::new(opts);
    let opts = pipeline.opts().clone();

    let ingested = pipeline.ingest(&source)?;
    println!(
        "[ingest]    {} ({}): {} inputs, {} outputs, {} LUTs, {} DFFs  ({:.3}s)",
        ingested.name,
        ingested.report.source,
        ingested.report.inputs,
        ingested.report.outputs,
        ingested.report.luts,
        ingested.report.dffs,
        ingested.report.secs,
    );
    if let Some(path) = args.get("--emit-blif") {
        let blif = pl_netlist::blif::to_blif(&ingested.netlist)?;
        std::fs::write(path, &blif)?;
        println!("[ingest]    wrote {path} ({} bytes)", blif.len());
    }
    if stop_after == Stage::Ingest {
        return Ok(());
    }

    if opts.lint.enabled {
        let lint = pipeline.lint(&ingested)?;
        print_lint_stage("[lint]     ", &lint);
    } else {
        println!("[lint]      skipped (--no-lint)");
    }
    if stop_after == Stage::Lint {
        return Ok(());
    }

    let optimized = pipeline.optimize(ingested)?;
    println!(
        "[optimize]  {} ({} -> {} nodes)  ({:.3}s)",
        if optimized.report.ran {
            "cleanup"
        } else {
            "skipped (pass --optimize to enable)"
        },
        optimized.report.nodes_before,
        optimized.report.nodes_after,
        optimized.report.secs,
    );
    if stop_after == Stage::Optimize {
        return Ok(());
    }

    let mapped = pipeline.techmap(optimized)?;
    println!(
        "[techmap]   LUT{}: {} -> {} LUTs, depth {}  ({:.3}s)",
        mapped.report.lut_size,
        mapped.report.luts_before,
        mapped.report.luts_after,
        mapped.report.depth,
        mapped.report.secs,
    );
    if args.flag("--verilog") {
        print!("{}", pl_netlist::verilog::to_verilog(&mapped.netlist)?);
    }
    if stop_after == Stage::Techmap {
        return Ok(());
    }

    let phased = pipeline.phased(&mapped)?;
    println!(
        "[phased]    {} gates, {} arcs ({} feedbacks) — live  ({:.3}s)",
        phased.report.logic_gates, phased.report.arcs, phased.report.ack_arcs, phased.report.secs,
    );
    if opts.lint.enabled {
        let lint = pipeline.lint_phased(&phased)?;
        print_lint_stage("[pl-lint]  ", &lint);
    }
    if let Some(path) = args.get("--vcd") {
        write_vcd(&phased.netlist, &mapped.netlist, &opts, path)?;
    }
    if stop_after == Stage::Phased {
        return Ok(());
    }

    let early = pipeline.early_eval(phased);
    if early.report.enabled {
        println!(
            "[early-eval] {} pairs / {} compute gates (+{:.0}% area, cache {}h/{}m)  ({:.3}s)",
            early.report.pairs,
            early.report.examined,
            early.report.area_increase * 100.0,
            early.report.cache_hits,
            early.report.cache_misses,
            early.report.secs,
        );
        print_pairs(&early);
    } else {
        println!("[early-eval] skipped (pass --ee to enable)");
    }
    if stop_after == Stage::EarlyEval {
        return Ok(());
    }

    let sim = pipeline.simulate(&early)?;
    if sim.report.vectors == 0 {
        // An empty run is reported explicitly rather than printing
        // vacuous aggregates (`min inf`) and a hollow `0 vectors match`.
        println!(
            "[simulate]  0 vectors — nothing simulated  ({:.3}s)",
            sim.report.secs
        );
        if opts.verify {
            println!("[verify]    0 vectors — nothing simulated, nothing verified");
        }
        return Ok(());
    }
    println!(
        "[simulate]  {} vectors, {} job(s), {} queue  ({:.3}s)",
        sim.report.vectors, sim.report.jobs, sim.report.queue, sim.report.secs,
    );
    if let Some(lanes) = sim.report.lanes {
        // Lane protocol: the output words were reassembled from the 64
        // striped substreams in vector order. The digest line is width-
        // invariant by the lane-equivalence contract — the CI batch
        // determinism smoke diffs it between --lanes 1 and --lanes 64.
        println!(
            "  lane protocol: {lanes}-lane engine{}",
            if sim.stats_ee.is_some() {
                "  (EE outputs bit-identical to plain)"
            } else {
                ""
            }
        );
        print_lane_digest(&sim.outputs);
    } else if let (Some(window), Some(stream_plain)) = (sim.report.window, &sim.stream_plain) {
        // Streamed protocol: one pipelined run per variant — makespan and
        // throughput are the metrics, plus a digest of the output words
        // (the CI determinism smoke diffs these lines across --jobs).
        print_streamed("without EE", window, stream_plain, &sim.outputs);
        if let Some(stream_ee) = &sim.stream_ee {
            print_streamed("with EE   ", window, stream_ee, &sim.outputs);
            if stream_plain.makespan > 0.0 {
                println!(
                    "  makespan decrease: {:.1}%  (EE outputs bit-identical to plain)",
                    100.0 * (stream_plain.makespan - stream_ee.makespan) / stream_plain.makespan
                );
            }
        }
        // Resumable-sweep audit trail. Kept off the `streamed ... digest`
        // lines above, which the CI determinism smoke diffs verbatim.
        if let Some(rec) = &sim.report.recovery_plain {
            println!("  recovery without EE: {rec}");
        }
        if let Some(rec) = &sim.report.recovery_ee {
            println!("  recovery with EE:    {rec}");
        }
    } else {
        println!("  latency without EE: {}", sim.stats_plain);
        if let Some(stats_ee) = &sim.stats_ee {
            println!("  latency with EE:    {stats_ee}");
            if sim.stats_plain.mean() > 0.0 {
                println!(
                    "  delay decrease: {:.1}%  (EE outputs bit-identical to plain)",
                    100.0 * (sim.stats_plain.mean() - stats_ee.mean()) / sim.stats_plain.mean()
                );
            }
        }
    }

    if opts.verify {
        let report = pipeline.verify(&mapped.netlist, &sim)?;
        println!(
            "[verify]    {} vectors match the synchronous reference  ({:.3}s)",
            report.vectors, report.secs,
        );
    }
    Ok(())
}

/// Prints a lint stage's outcome line plus one indented line per warning
/// (a deny never reaches here: the stage methods abort with
/// [`pl_flow::FlowError::Lint`] first).
fn print_lint_stage(label: &str, stage: &pl_flow::LintStageReport) {
    let (warns, _) = stage.report.counts();
    if warns == 0 {
        println!("{label} clean  ({:.3}s)", stage.secs);
        return;
    }
    println!("{label} {warns} warning(s)  ({:.3}s)", stage.secs);
    for line in stage.report.to_text().lines() {
        println!("  {line}");
    }
}

/// Prints the lane protocol's deterministic FNV-1a digest over the
/// reassembled output words, in vector order. The line carries no lane
/// width on purpose: `--lanes 1` (64 scalar substream engines) and
/// `--lanes 64` (one batch engine per block) must print the identical
/// digest — the CI batch determinism smoke diffs exactly this line.
fn print_lane_digest(words: &[Vec<bool>]) {
    let mut digest = pl_sim::Fnv64::new();
    for word in words {
        for &b in word {
            digest.mix(u64::from(b));
        }
    }
    println!(
        "  lane digest (64 substreams, vector order): {:#018x}",
        digest.finish()
    );
}

/// Prints one variant's streamed outcome with a deterministic FNV-1a
/// digest of the output words — `--jobs`/`--window` must never change
/// this line (the pipelined sweep is bit-identical to the sequential
/// stream), which the CI smoke step asserts by diffing it across runs.
/// The words are passed separately because the flow's stream outcomes
/// carry metrics only (both variants' words are identical and live in
/// `Simulated::outputs` once).
fn print_streamed(label: &str, window: usize, stream: &pl_sim::StreamOutcome, words: &[Vec<bool>]) {
    // Words only — the makespan is printed (and CI-diffed) on its own, and
    // the plain/EE lines sharing one digest is exactly the "EE outputs
    // bit-identical to plain" claim made visible.
    let mut digest = pl_sim::Fnv64::new();
    for word in words {
        for &b in word {
            digest.mix(u64::from(b));
        }
    }
    // An all-constant-output netlist completes in 0 ns; its throughput is
    // reported as instantaneous rather than printing `inf vectors/ns`.
    let throughput = if stream.throughput.is_finite() {
        format!("{:.4} vectors/ns", stream.throughput)
    } else {
        "instantaneous".to_string()
    };
    println!(
        "  streamed {label} (window {window}): makespan {:.2} ns, {throughput}, digest {:#018x}",
        stream.makespan,
        digest.finish(),
    );
}

/// Prints the implemented master/trigger pairs with their Equation-1
/// ingredients.
fn print_pairs(early: &pl_flow::EarlyEvaled) {
    if early.pairs.is_empty() {
        return;
    }
    println!(
        "  {:>8} {:>8} {:>8} {:>9} {:>5} {:>5} {:>7}",
        "master", "trigger", "pins", "coverage", "Mmax", "Tmax", "cost"
    );
    for p in &early.pairs {
        println!(
            "  {:>8} {:>8} {:>8} {:>8.0}% {:>5} {:>5} {:>7.2}",
            p.master.to_string(),
            p.trigger.to_string(),
            format!("{:#06b}", p.candidate.support),
            p.candidate.coverage * 100.0,
            p.candidate.m_max,
            p.candidate.t_max,
            p.cost()
        );
    }
}

/// Simulates 8 random vectors with tracing and writes a VCD waveform.
fn write_vcd(
    pl: &pl_core::PlNetlist,
    mapped: &pl_netlist::Netlist,
    opts: &FlowOptions,
    out_path: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = pl_sim::PlSimulator::new(pl, opts.delays.clone())?;
    sim.enable_tracing();
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    for _ in 0..8 {
        let v: Vec<bool> = (0..pl.input_gates().len()).map(|_| rng.gen()).collect();
        sim.run_vector(&v)?;
    }
    let vcd = pl_sim::trace::to_vcd(pl, sim.trace(), mapped.name());
    std::fs::write(out_path, &vcd)?;
    println!(
        "[phased]    wrote {out_path}: {} signal changes over {:.1} ns",
        sim.trace().len(),
        sim.time()
    );
    Ok(())
}
