//! `plc` — phased-logic compiler/driver CLI.
//!
//! A downstream-user tool wrapping the whole reproduction flow:
//!
//! ```text
//! plc flow   <file.blif | bXX>        run BLIF or an ITC99 id through the
//!                                     full EE flow and print statistics
//! plc ee     <file.blif | bXX>        list every master/trigger pair with
//!                                     its Equation-1 ingredients
//! plc vcd    <file.blif | bXX> <out>  simulate 8 random vectors and write
//!                                     a VCD token waveform
//! plc verilog <file.blif | bXX>       print the LUT4-mapped netlist as
//!                                     structural Verilog
//! ```

use std::process::ExitCode;

use phased_logic_ee::prelude::*;
use pl_netlist::Netlist;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("flow") => with_design(&args, 2, |name, mapped| cmd_flow(name, &mapped)),
        Some("ee") => with_design(&args, 2, |name, mapped| cmd_ee(name, &mapped)),
        Some("vcd") => with_design(&args, 3, |_name, mapped| {
            cmd_vcd(&mapped, args.get(2).expect("arity checked"))
        }),
        Some("verilog") => with_design(&args, 2, |_, mapped| {
            let v = pl_netlist::verilog::to_verilog(&mapped)?;
            print!("{v}");
            Ok(())
        }),
        _ => {
            eprintln!(
                "usage: plc <flow|ee|verilog> <file.blif|bXX>\n       plc vcd <file.blif|bXX> <out.vcd>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("plc: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a design by BLIF path or ITC99 id, LUT4-maps it, and hands it on.
fn with_design(
    args: &[String],
    min_args: usize,
    f: impl FnOnce(String, Netlist) -> Result<(), Box<dyn std::error::Error>>,
) -> Result<(), Box<dyn std::error::Error>> {
    if args.len() < min_args {
        return Err("missing design argument (BLIF path or b01..b15)".into());
    }
    let spec = &args[1];
    let gates = if let Some(bench) = pl_itc99::by_id(spec) {
        (bench.build)().elaborate()?
    } else {
        let text =
            std::fs::read_to_string(spec).map_err(|e| format!("cannot read '{spec}': {e}"))?;
        pl_netlist::blif::from_blif(&text)?
    };
    let mapped = map_to_lut4(&gates, &MapOptions::default())?;
    f(spec.clone(), mapped)
}

fn cmd_flow(name: String, mapped: &Netlist) -> Result<(), Box<dyn std::error::Error>> {
    let stats = pl_netlist::analyze::stats(mapped)?;
    println!("design {name}: {stats}");
    let plain = PlNetlist::from_sync(mapped)?;
    pl_core::marked::check_liveness(&plain)?;
    println!(
        "phased logic: {} gates, {} arcs ({} feedbacks) — live",
        plain.num_logic_gates(),
        plain.arcs().len(),
        plain.num_ack_arcs()
    );
    let report = PlNetlist::from_sync(mapped)?.with_early_evaluation(&EeOptions::default());
    println!(
        "early evaluation: {} pairs / {} compute gates (+{:.0}% area)",
        report.pairs().len(),
        report.examined(),
        report.area_increase() * 100.0
    );
    let delays = DelayModel::default();
    let (a, base) = pl_sim::measure_latency(&plain, &delays, 100, 1)?;
    let (b, fast) = pl_sim::measure_latency(report.netlist(), &delays, 100, 1)?;
    if a != b {
        return Err("EE changed functional results (bug!)".into());
    }
    println!("latency without EE: {base}");
    println!("latency with EE:    {fast}");
    if base.mean() > 0.0 {
        println!(
            "delay decrease: {:.1}%",
            100.0 * (base.mean() - fast.mean()) / base.mean()
        );
    }
    Ok(())
}

fn cmd_ee(name: String, mapped: &Netlist) -> Result<(), Box<dyn std::error::Error>> {
    let report = PlNetlist::from_sync(mapped)?.with_early_evaluation(&EeOptions::default());
    println!(
        "design {name}: {} master/trigger pairs (of {} compute gates)",
        report.pairs().len(),
        report.examined()
    );
    println!(
        "{:>8} {:>8} {:>8} {:>9} {:>5} {:>5} {:>7}",
        "master", "trigger", "pins", "coverage", "Mmax", "Tmax", "cost"
    );
    for p in report.pairs() {
        println!(
            "{:>8} {:>8} {:>8} {:>8.0}% {:>5} {:>5} {:>7.2}",
            p.master.to_string(),
            p.trigger.to_string(),
            format!("{:#06b}", p.candidate.support),
            p.candidate.coverage * 100.0,
            p.candidate.m_max,
            p.candidate.t_max,
            p.cost()
        );
    }
    Ok(())
}

fn cmd_vcd(mapped: &Netlist, out_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let pl = PlNetlist::from_sync(mapped)?;
    let mut sim = PlSimulator::new(&pl, DelayModel::default())?;
    sim.enable_tracing();
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for _ in 0..8 {
        let v: Vec<bool> = (0..pl.input_gates().len()).map(|_| rng.gen()).collect();
        sim.run_vector(&v)?;
    }
    let vcd = pl_sim::trace::to_vcd(&pl, sim.trace(), mapped.name());
    std::fs::write(out_path, &vcd)?;
    println!(
        "wrote {out_path}: {} signal changes over {:.1} ns",
        sim.trace().len(),
        sim.time()
    );
    Ok(())
}
